//! The generic communication daemon (Vdaemon).
//!
//! Paper §IV-A: *"the MPI process does not connect directly to the other
//! ones. It communicates with a generic communication daemon, through a
//! pair of system pipes. [...] The daemon handles the effective
//! communications, namely sending, receiving, reordering messages,
//! establishing connections with all components of the system and
//! detecting failures. In each of these routines, protocol dependent
//! functions are called."*
//!
//! This module is that daemon. It owns:
//!
//! * the pipe to the local MPI process (requests drained on pokes),
//! * per-channel sequence numbers, duplicate dropping and reordering,
//! * the eager/rendezvous transport,
//! * the matching engine (posted receives / unexpected queue),
//! * checkpoint assembly and the restart/rollback state machine,
//!
//! and calls the [`VProtocol`] hooks at every protocol-relevant point.
//! Everything fault-tolerance-specific — piggybacking, event logging,
//! sender-based payload logs, replay — lives behind those hooks.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;

use bytes::Bytes;
use vlog_sim::{
    Actor, ActorId, Delivery, Event, NodeId, OpCell, Sim, SimDuration, SimTime, TaskId,
    TimerHandle, WireSize,
};

use crate::api::Mpi;
use crate::ckpt::{CkptReply, CkptRequest, Image, ImageProto, StoredMsg};
use crate::cost::StackProfile;
use crate::hooks::{
    Ctx, ProtoBlob, RankStatCell, RecvGate, SendGate, SharedRankStats, TopoCache, TopoView,
    Topology, VProtocol,
};
use crate::phase::ProtoPhase;
use crate::pipe::{AppRequest, PipeBox, SharedPipe};
use crate::types::{
    AppMsg, DaemonMsg, Payload, PiggybackBlob, Rank, RecvMsg, RecvSelector, Ssn, Tag,
};

/// Poke token: the pipe has requests.
pub const TOKEN_PIPE: u64 = 0;
/// Poke token: boot the daemon (spawn or recover the application).
pub const TOKEN_BOOT: u64 = 1;
/// Timer tokens at or above this value belong to the protocol.
pub const PROTO_TIMER_BASE: u64 = 1_000;

/// Loopback delay for daemon-internal self messages.
const SELF_DELAY: SimDuration = SimDuration::from_micros(1);
/// Local snapshot memcpy cost (ns per image byte).
const SNAPSHOT_NS_PER_BYTE: f64 = 2.0;

/// An application program: invoked once per incarnation. The returned
/// futures must be `Send` so a whole cluster run can be moved to a worker
/// thread.
pub type AppSpec = Arc<dyn Fn(Mpi) -> Pin<Box<dyn Future<Output = ()> + Send>> + Send + Sync>;

/// Wraps an async closure into an [`AppSpec`].
pub fn app<F, Fut>(f: F) -> AppSpec
where
    F: Fn(Mpi) -> Fut + Send + Sync + 'static,
    Fut: Future<Output = ()> + Send + 'static,
{
    Arc::new(move |mpi| Box::pin(f(mpi)))
}

/// How a daemon instance starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootMode {
    /// Initial launch: run the program from the beginning.
    Fresh,
    /// Restart after a crash or rollback: fetch a checkpoint image
    /// (`None` = latest) and let the protocol recover.
    Recover { version: Option<u64> },
}

struct PendingRdv {
    tag: Tag,
    payload: Payload,
    done: Option<OpCell<()>>,
}

struct HeldSend {
    dst: Rank,
    tag: Tag,
    payload: Payload,
    ssn: Ssn,
    done: Option<OpCell<()>>,
}

struct PostedRecv {
    sel: RecvSelector,
    cell: OpCell<RecvMsg>,
}

/// Deferred work queued by protocol hooks, processed after the hook
/// returns (protocols are never re-entered).
enum Inject {
    /// Deliver straight to the matching engine, bypassing hooks
    /// (replay-ordered deliveries; the determinant already exists).
    Deliver {
        src: Rank,
        tag: Tag,
        payload: Payload,
        cost: SimDuration,
    },
    /// Run the full acceptance path again (live messages buffered during
    /// replay; they need fresh determinants).
    Reaccept(AppMsg),
    /// Send an internal protocol message through the normal application
    /// path (coordinated-checkpoint markers travel in-band).
    InternalSend {
        dst: Rank,
        tag: Tag,
        payload: Payload,
    },
}

/// Daemon-internal self messages.
enum Internal {
    AppFinished,
}

/// The generic (protocol-independent) part of a daemon. Exposed to
/// protocols through [`Ctx`].
pub struct DaemonCore {
    rank: Rank,
    n: usize,
    node: NodeId,
    me: ActorId,
    topo: Topology,
    /// Epoch-validated topology snapshot: steady-state routing reads it
    /// lock-free. `RefCell` keeps the `&self` accessor signatures (the
    /// daemon is single-threaded actor state).
    topo_cache: RefCell<TopoCache>,
    profile: Arc<StackProfile>,
    stats: RankStatCell,
    app_spec: AppSpec,

    pipe: SharedPipe,
    app_task: Option<TaskId>,

    next_ssn: Vec<Ssn>,
    expected_ssn: Vec<Ssn>,
    reorder: Vec<BTreeMap<Ssn, AppMsg>>,
    pending_rdv: BTreeMap<(Rank, Ssn), PendingRdv>,
    held: VecDeque<HeldSend>,

    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<StoredMsg>,

    ckpt_counter: u64,
    /// Image assembled at the checkpoint point, not yet shipped (the
    /// protocol controls the ship time — coordinated checkpointing waits
    /// for its markers).
    pending_image: Option<PendingImage>,
    ship_requested: bool,
    recovering: bool,
    recover_start: SimTime,
    finished: bool,

    release_requested: bool,
    inject: VecDeque<Inject>,
}

/// Generic image sections captured at the checkpoint point.
struct PendingImage {
    version: u64,
    app_state: Payload,
    next_ssn: Vec<Ssn>,
    expected_ssn: Vec<Ssn>,
    unexpected: Vec<StoredMsg>,
}

impl DaemonCore {
    pub fn rank(&self) -> Rank {
        self.rank
    }

    pub fn n_ranks(&self) -> usize {
        self.n
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn actor(&self) -> ActorId {
        self.me
    }

    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Current lock-free topology snapshot (epoch-validated; re-captured
    /// only when the topology mutated, which never happens mid-run).
    pub fn topo_view(&self) -> Arc<TopoView> {
        self.topo_cache.borrow_mut().view(&self.topo).clone()
    }

    pub fn profile(&self) -> &StackProfile {
        &self.profile
    }

    pub fn stats(&self) -> SharedRankStats {
        self.stats.shared()
    }

    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    pub fn app_finished(&self) -> bool {
        self.finished
    }

    /// Next expected ssn per source channel — the payload-reclaim
    /// watermarks a recovering process sends to its peers.
    pub fn expected_watermarks(&self) -> Vec<Ssn> {
        self.expected_ssn.clone()
    }

    /// Next expected ssn on one source channel.
    pub fn expected_of(&self, src: Rank) -> Ssn {
        self.expected_ssn[src]
    }

    /// Next outgoing ssn per destination channel (how many messages were
    /// sent on each channel so far) — coordinated markers carry these.
    pub fn next_ssn_watermarks(&self) -> Vec<Ssn> {
        self.next_ssn.clone()
    }

    /// Sends a protocol control message to the daemon of another rank.
    pub fn control_to_rank(&self, sim: &mut Sim, dst: Rank, bytes: u64, body: Box<dyn Any + Send>) {
        let actor = self.topo_view().daemon(dst);
        self.control_to_actor(sim, actor, bytes, body_as_daemon(body));
    }

    /// Sends a control message to an arbitrary actor (Event Logger,
    /// checkpoint server...), choosing loopback vs network automatically.
    /// Large controls are paced (see [`stream_control`]).
    pub fn control_to_actor(
        &self,
        sim: &mut Sim,
        actor: ActorId,
        bytes: u64,
        body: Box<dyn Any + Send>,
    ) {
        stream_control(sim, self.node, actor, bytes, body);
    }

    /// Retransmits a logged payload to a recovering peer. Replayed copies
    /// carry no piggyback; the receiver collected determinants separately.
    pub fn transmit_replay(
        &mut self,
        sim: &mut Sim,
        dst: Rank,
        tag: Tag,
        ssn: Ssn,
        payload: Payload,
    ) {
        // If this message was stuck in a rendezvous whose CTS died with
        // the receiver, the replay supersedes it: complete the
        // application's send.
        if let Some(p) = self.pending_rdv.remove(&(dst, ssn)) {
            if let Some(done) = p.done {
                done.complete(());
            }
        }
        let cost = self.profile.msg_cost(payload.len());
        let end = sim.charge_cpu(self.node, cost);
        let msg = AppMsg {
            src: self.rank,
            dst,
            tag,
            ssn,
            payload,
            piggyback: PiggybackBlob::empty(),
            replayed: true,
        };
        let target = self.topo_view().daemon(dst);
        let src_node = self.node;
        sim.schedule_at(
            end,
            Event::closure(move |sim| {
                let size = msg.wire_size();
                sim.net_send(src_node, target, size, Box::new(DaemonMsg::App(msg)));
            }),
        );
    }

    /// Queues a replay-ordered delivery (bypasses the protocol hooks).
    pub fn inject_deliver(&mut self, src: Rank, tag: Tag, payload: Payload, cost: SimDuration) {
        self.inject.push_back(Inject::Deliver {
            src,
            tag,
            payload,
            cost,
        });
    }

    /// Queues a buffered live message for re-acceptance through the full
    /// protocol path.
    pub fn reaccept(&mut self, msg: AppMsg) {
        self.inject.push_back(Inject::Reaccept(msg));
    }

    /// Queues an internal in-band message (e.g. a Chandy-Lamport marker).
    pub fn internal_send(&mut self, dst: Rank, tag: Tag, payload: Payload) {
        self.inject
            .push_back(Inject::InternalSend { dst, tag, payload });
    }

    /// Asks the daemon to re-run the transmit path for held sends
    /// (pessimistic logging releases).
    pub fn release_held(&mut self) {
        self.release_requested = true;
    }

    /// Ships the pending checkpoint image to the server (called by the
    /// protocol from `on_image_assembled`, immediately by default or when
    /// a coordinated snapshot's channel recording completes).
    pub fn request_ship(&mut self) {
        if self.pending_image.is_some() {
            self.ship_requested = true;
        }
    }

    /// Advances the next-expected ssn on a source channel. Used by
    /// coordinated checkpointing when it re-injects recorded channel
    /// state on rollback (the re-injected messages and the marker consumed
    /// those sequence numbers before the snapshot).
    pub fn advance_expected(&mut self, src: Rank, to: Ssn) {
        if to > self.expected_ssn[src] {
            self.expected_ssn[src] = to;
        }
    }

    /// Declares recovery finished: normal operation resumes and the
    /// total recovery duration is recorded.
    pub fn set_recovered(&mut self, sim: &mut Sim) {
        if self.recovering {
            self.recovering = false;
            let dt = sim.now().saturating_since(self.recover_start);
            self.stats.local().recovery_total.push(dt);
            // Recovery got everything it needed: any still-pending
            // replay/reclaim expectations are moot, not dangling.
            vlog_sim::causality::cancel_owner(self.rank as u64);
            vlog_sim::event!("recovery-complete" { rank = self.rank }
                caused_by "image-fetched" { rank = self.rank });
        }
    }

    /// Sets a protocol timer; it arrives at `VProtocol::on_timer` with the
    /// given token. The returned wheel handle cancels it — protocols that
    /// arm retry/timeout timers should cancel them once the awaited event
    /// arrives instead of letting a stale no-op fire.
    pub fn set_proto_timer(&self, sim: &mut Sim, delay: SimDuration, token: u64) -> TimerHandle {
        sim.set_timer(self.me, delay, PROTO_TIMER_BASE + token)
    }

    /// Cancels a protocol timer set through [`DaemonCore::set_proto_timer`].
    /// Stale handles (fired, already cancelled, or detached because the
    /// daemon's incarnation died) are ignored; returns whether a live
    /// timer was cancelled.
    pub fn cancel_proto_timer(&self, sim: &mut Sim, handle: TimerHandle) -> bool {
        sim.cancel_timer(handle)
    }

    /// Reports that this rank crossed a protocol-phase boundary; a
    /// matching armed [`crate::PhaseFault`] crashes the rank here. No-op
    /// (one relaxed epoch load) when no armature is armed.
    pub fn phase_boundary(&self, sim: &mut Sim, phase: ProtoPhase) {
        let view = self.topo_view();
        if let Some(arm) = view.phase_faults() {
            arm.crossed(sim, self.rank, phase);
        }
    }

    // ---- internal helpers -------------------------------------------

    fn spawn_app(&mut self, sim: &mut Sim, restored: Option<Bytes>) {
        self.pipe = PipeBox::new();
        self.finished = false;
        let mpi = Mpi::new(
            self.rank,
            self.n,
            sim.exec(),
            self.pipe.clone(),
            self.me,
            self.profile.clone(),
            restored,
        );
        let fut = (self.app_spec)(mpi);
        let node = self.node;
        let me = self.me;
        let task = sim.spawn_with_exit(Some(self.node), fut, move |sim| {
            sim.local_send(
                node,
                me,
                WireSize::default(),
                Box::new(Internal::AppFinished),
                SELF_DELAY,
            );
        });
        self.app_task = Some(task);
    }

    /// Hands an accepted message to the matching engine *synchronously*
    /// (so checkpoints always see a consistent daemon state) and delays
    /// only the application-visible completion until `ready_at` plus the
    /// pipe crossing.
    ///
    /// Synchrony here is what makes acceptance atomic with respect to
    /// checkpoints: `expected_ssn` was already advanced, so the message
    /// must be in `unexpected` (and thus in the image) or already matched
    /// before any other event can run.
    fn deliver_to_matching(
        &mut self,
        sim: &mut Sim,
        src: Rank,
        tag: Tag,
        payload: Payload,
        ready_at: SimTime,
    ) {
        if let Some(pos) = self.posted.iter().position(|p| p.sel.matches(src, tag)) {
            let p = self.posted.remove(pos).unwrap();
            let at = ready_at + self.profile.pipe_cost(payload.len());
            let msg = RecvMsg { src, tag, payload };
            sim.schedule_at(at, Event::closure(move |_| p.cell.complete(msg)));
        } else {
            self.unexpected.push_back(StoredMsg { src, tag, payload });
        }
    }
}

/// Wraps a protocol control body into the daemon wire envelope.
fn body_as_daemon(body: Box<dyn Any + Send>) -> Box<dyn Any + Send> {
    Box::new(DaemonMsg::Proto(body))
}

/// Pacing chunk for large control transfers (checkpoint images, recovery
/// streams). TCP interleaves flows at packet granularity; booking a
/// multi-megabyte message on the NIC in one piece would stall every other
/// flow for seconds, so large controls are split into chunk-sized filler
/// messages (dropped at the receiver) followed by the real body.
pub struct StreamChunk;

/// Chunk size for paced control streams.
pub const STREAM_CHUNK_BYTES: u64 = 256 << 10;

/// Sends a control message of `bytes` to `dst`, pacing anything larger
/// than [`STREAM_CHUNK_BYTES`] as a chunk train so concurrent flows can
/// interleave. The real `body` arrives once the whole volume has crossed.
pub fn stream_control(
    sim: &mut Sim,
    src_node: NodeId,
    dst: ActorId,
    bytes: u64,
    body: Box<dyn Any + Send>,
) {
    if sim.actor_node(dst) == src_node {
        sim.local_send(src_node, dst, WireSize::control(bytes), body, SELF_DELAY);
        return;
    }
    if bytes <= STREAM_CHUNK_BYTES {
        sim.net_send(src_node, dst, WireSize::control(bytes), body);
        return;
    }
    let chunk = STREAM_CHUNK_BYTES.min(bytes);
    let now = sim.now();
    let dst_node = sim.actor_node(dst);
    let arrival_paced = sim.net_mut().send(now, src_node, dst_node, chunk);
    sim.stats_mut().record_message(WireSize::control(chunk));
    let rest = bytes - chunk;
    sim.schedule_at(
        arrival_paced,
        Event::closure(move |sim| {
            stream_control(sim, src_node, dst, rest, body);
        }),
    );
}

/// The daemon actor: generic core + protocol hooks.
pub struct Vdaemon {
    core: DaemonCore,
    proto: Box<dyn VProtocol>,
    boot: BootMode,
    /// Application messages that arrived in the *restart window*: after
    /// this replacement daemon came alive but before its checkpoint
    /// image was fetched and `finish_restart` ran. Accepting them
    /// immediately would thread them through a not-yet-recovering
    /// protocol — advancing channel watermarks and consuming deliveries
    /// the replay is about to wait for (a permanent recovery stall).
    /// They are re-fed through the normal acceptance path, in arrival
    /// order, as soon as the restored state is in place.
    pre_restart: VecDeque<AppMsg>,
}

impl Vdaemon {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rank: Rank,
        n: usize,
        node: NodeId,
        me: ActorId,
        topo: Topology,
        profile: Arc<StackProfile>,
        stats: SharedRankStats,
        app_spec: AppSpec,
        proto: Box<dyn VProtocol>,
        boot: BootMode,
    ) -> Self {
        Vdaemon {
            core: DaemonCore {
                rank,
                n,
                node,
                me,
                topo,
                topo_cache: RefCell::new(TopoCache::new()),
                profile,
                stats: RankStatCell::new(stats),
                app_spec,
                pipe: PipeBox::new(),
                app_task: None,
                next_ssn: vec![0; n],
                expected_ssn: vec![0; n],
                reorder: (0..n).map(|_| BTreeMap::new()).collect(),
                pending_rdv: BTreeMap::new(),
                held: VecDeque::new(),
                posted: VecDeque::new(),
                unexpected: VecDeque::new(),
                ckpt_counter: 0,
                pending_image: None,
                ship_requested: false,
                recovering: false,
                recover_start: SimTime::ZERO,
                finished: false,
                release_requested: false,
                inject: VecDeque::new(),
            },
            proto,
            boot,
            pre_restart: VecDeque::new(),
        }
    }

    fn boot(&mut self, sim: &mut Sim) {
        match self.boot {
            BootMode::Fresh => {
                self.core.spawn_app(sim, None);
            }
            BootMode::Recover { version } => {
                self.core.recovering = true;
                self.core.recover_start = sim.now();
                // A recovery boot supersedes the dead incarnation: its
                // pending expectations are moot, and this incarnation
                // cannot progress until its checkpoint image arrives.
                vlog_sim::causality::cancel_owner(self.core.rank as u64);
                vlog_sim::event!("restart-boot" { rank = self.core.rank });
                vlog_sim::causality::expect(
                    vlog_sim::ckey!("image-fetched", rank = self.core.rank),
                    vlog_sim::ckey!("restart-boot", rank = self.core.rank),
                    self.core.rank as u64,
                );
                let Some((server, _)) = self.core.topo_view().ckpt_server() else {
                    // No checkpoint infrastructure: restart from scratch.
                    self.finish_restart(sim, None);
                    return;
                };
                self.core.control_to_actor(
                    sim,
                    server,
                    16,
                    Box::new(CkptRequest::Fetch {
                        rank: self.core.rank,
                        version,
                        reply_to: self.core.me,
                    }),
                );
            }
        }
    }

    fn finish_restart(&mut self, sim: &mut Sim, image: Option<Arc<Image>>) {
        let (restored, blob) = match image {
            Some(img) => {
                self.core.next_ssn = img.next_ssn.clone();
                self.core.expected_ssn = img.expected_ssn.clone();
                self.core.unexpected = img.unexpected.iter().cloned().collect();
                self.core.ckpt_counter = img.version;
                let restored = if img.app_state.data.is_empty() {
                    None
                } else {
                    Some(img.app_state.data.clone())
                };
                let blob = ProtoBlob {
                    body: img.proto.body.clone(),
                    bytes: img.proto.bytes,
                };
                (restored, Some(blob))
            }
            None => (None, None),
        };
        vlog_sim::event!("image-fetched" { rank = self.core.rank }
            caused_by "restart-boot" { rank = self.core.rank });
        {
            let mut ctx = Ctx {
                sim,
                core: &mut self.core,
            };
            self.proto.on_restart(&mut ctx, blob);
        }
        self.core.spawn_app(sim, restored);
        // The restored image (or scratch state) is in place: the
        // ImageFetched boundary. Faults armed here model a crash during
        // recovery (a double fault from the protocol's point of view).
        self.core.phase_boundary(sim, ProtoPhase::ImageFetched);
        // Re-feed everything that arrived during the restart window, in
        // arrival order, now that the restored watermarks and the
        // protocol's recovery state exist: replay supplies land in the
        // recovery buffer, stale duplicates are dropped by the ssn
        // filter.
        while let Some(m) = self.pre_restart.pop_front() {
            self.handle_app_msg(sim, m);
        }
        self.pump(sim);
    }

    fn drain_pipe(&mut self, sim: &mut Sim) {
        loop {
            let req = self.core.pipe.lock().unwrap().queue.pop_front();
            let Some(req) = req else { break };
            match req {
                AppRequest::Send {
                    dst,
                    tag,
                    payload,
                    done,
                } => self.handle_app_send(sim, dst, tag, payload, done),
                AppRequest::Recv { sel, cell } => self.handle_app_recv(sim, sel, cell),
                AppRequest::Checkpoint { state, done } => {
                    self.handle_checkpoint_point(sim, state, done)
                }
            }
        }
    }

    fn handle_app_send(
        &mut self,
        sim: &mut Sim,
        dst: Rank,
        tag: Tag,
        payload: Payload,
        done: OpCell<()>,
    ) {
        let ssn = self.core.next_ssn[dst];
        self.core.next_ssn[dst] = ssn + 1;
        let eager = payload.len() <= self.core.profile.eager_threshold;
        let gate = {
            let mut ctx = Ctx {
                sim,
                core: &mut self.core,
            };
            self.proto.on_send_accept(&mut ctx, dst, tag, ssn, &payload)
        };
        match gate {
            SendGate::Go { cost } => {
                // Eager sends complete for the application at acceptance.
                let done = if eager {
                    done.complete(());
                    None
                } else {
                    Some(done)
                };
                self.transmit(sim, dst, tag, payload, ssn, cost, done);
            }
            SendGate::Hold => {
                let done = if eager {
                    done.complete(());
                    None
                } else {
                    Some(done)
                };
                self.core.held.push_back(HeldSend {
                    dst,
                    tag,
                    payload,
                    ssn,
                    done,
                });
            }
        }
    }

    /// The transmit path: eager messages get their piggyback and leave;
    /// large messages go through RTS/CTS first.
    fn transmit(
        &mut self,
        sim: &mut Sim,
        dst: Rank,
        tag: Tag,
        payload: Payload,
        ssn: Ssn,
        gate_cost: SimDuration,
        done: Option<OpCell<()>>,
    ) {
        if payload.len() <= self.core.profile.eager_threshold {
            self.transmit_data(sim, dst, tag, payload, ssn, gate_cost, done);
        } else {
            self.core
                .pending_rdv
                .insert((dst, ssn), PendingRdv { tag, payload, done });
            let cost = self.core.profile.msg_cost(0) + gate_cost;
            let end = sim.charge_cpu(self.core.node, cost);
            let rts = DaemonMsg::Rts {
                src: self.core.rank,
                ssn,
                tag,
                len: self.core.pending_rdv[&(dst, ssn)].payload.len(),
            };
            let target = self.core.topo_view().daemon(dst);
            let src_node = self.core.node;
            sim.schedule_at(
                end,
                Event::closure(move |sim| {
                    sim.net_send(src_node, target, WireSize::control(16), Box::new(rts));
                }),
            );
        }
    }

    fn transmit_data(
        &mut self,
        sim: &mut Sim,
        dst: Rank,
        tag: Tag,
        payload: Payload,
        ssn: Ssn,
        gate_cost: SimDuration,
        done: Option<OpCell<()>>,
    ) {
        let (pb, pb_cost) = {
            let mut ctx = Ctx {
                sim,
                core: &mut self.core,
            };
            self.proto.on_transmit(&mut ctx, dst, ssn)
        };
        {
            let st = self.core.stats.local();
            st.app_msgs_sent += 1;
            st.pb_bytes_sent += pb.bytes;
            if pb.bytes == 0 {
                st.empty_pb_msgs += 1;
            }
            st.pb_send_time += pb_cost;
        }
        let cpu = self.core.profile.msg_cost(payload.len()) + gate_cost + pb_cost;
        let end = sim.charge_cpu(self.core.node, cpu);
        let msg = AppMsg {
            src: self.core.rank,
            dst,
            tag,
            ssn,
            payload,
            piggyback: pb,
            replayed: false,
        };
        let target = self.core.topo_view().daemon(dst);
        let src_node = self.core.node;
        sim.schedule_at(
            end,
            Event::closure(move |sim| {
                let size = msg.wire_size();
                sim.net_send(src_node, target, size, Box::new(DaemonMsg::App(msg)));
                if let Some(done) = done {
                    done.complete(());
                }
            }),
        );
    }

    fn handle_app_recv(&mut self, sim: &mut Sim, sel: RecvSelector, cell: OpCell<RecvMsg>) {
        if let Some(pos) = self
            .core
            .unexpected
            .iter()
            .position(|m| sel.matches(m.src, m.tag))
        {
            let m = self.core.unexpected.remove(pos).unwrap();
            let delay = self.core.profile.pipe_cost(m.payload.len());
            sim.schedule(
                delay,
                Event::closure(move |_| {
                    cell.complete(RecvMsg {
                        src: m.src,
                        tag: m.tag,
                        payload: m.payload,
                    })
                }),
            );
        } else {
            self.core.posted.push_back(PostedRecv { sel, cell });
        }
    }

    fn handle_checkpoint_point(&mut self, sim: &mut Sim, state: Payload, done: OpCell<bool>) {
        if self.core.recovering {
            // No checkpoints mid-recovery: an image captured between the
            // restore and the end of replay would mix restored channel
            // state with a half-replayed protocol state; a later restart
            // from it could stall forever. The application offers again
            // at its next checkpoint point.
            done.complete(false);
            return;
        }
        let due = {
            let mut ctx = Ctx {
                sim,
                core: &mut self.core,
            };
            self.proto.checkpoint_due(&mut ctx)
        };
        if !due {
            done.complete(false);
            return;
        }
        let version = {
            let snap = self.proto.snapshot_version();
            let v = snap.unwrap_or(self.core.ckpt_counter + 1);
            self.core.ckpt_counter = self.core.ckpt_counter.max(v);
            v
        };
        // Capture the generic sections at the application-safe point; the
        // protocol decides when the image ships (immediately by default).
        let state_bytes = state.len();
        self.core.pending_image = Some(PendingImage {
            version,
            app_state: state,
            next_ssn: self.core.next_ssn.clone(),
            expected_ssn: self.core.expected_ssn.clone(),
            unexpected: self.core.unexpected.iter().cloned().collect(),
        });
        // Local snapshot cost (fork + copy-on-write in the real system).
        let cost = SimDuration::from_nanos((state_bytes as f64 * SNAPSHOT_NS_PER_BYTE) as u64);
        let end = sim.charge_cpu(self.core.node, cost);
        sim.schedule_at(end, Event::closure(move |_| done.complete(true)));
        let mut ctx = Ctx {
            sim,
            core: &mut self.core,
        };
        self.proto.on_image_assembled(&mut ctx, version);
    }

    /// Ships the pending image: fetches the protocol blob and streams the
    /// image to the checkpoint server. Runs from `pump`.
    fn ship_image(&mut self, sim: &mut Sim) {
        let Some(pending) = self.core.pending_image.take() else {
            return;
        };
        let blob = {
            let mut ctx = Ctx {
                sim,
                core: &mut self.core,
            };
            self.proto.checkpoint_blob(&mut ctx)
        };
        let image = Arc::new(Image {
            rank: self.core.rank,
            version: pending.version,
            app_state: pending.app_state,
            next_ssn: pending.next_ssn,
            expected_ssn: pending.expected_ssn,
            unexpected: pending.unexpected,
            proto: ImageProto {
                body: blob.body,
                bytes: blob.bytes,
            },
        });
        let bytes = image.wire_bytes();
        let cost = SimDuration::from_nanos((bytes as f64 * SNAPSHOT_NS_PER_BYTE) as u64);
        let end = sim.charge_cpu(self.core.node, cost);
        if let Some((server, _)) = self.core.topo_view().ckpt_server() {
            let src_node = self.core.node;
            let me = self.core.me;
            sim.schedule_at(
                end,
                Event::closure(move |sim| {
                    let req = CkptRequest::Store {
                        image,
                        reply_to: me,
                    };
                    stream_control(sim, src_node, server, bytes, Box::new(req));
                }),
            );
        }
    }

    /// In-order acceptance of one application message.
    fn accept(&mut self, sim: &mut Sim, mut msg: AppMsg) {
        self.core.expected_ssn[msg.src] = msg.ssn + 1;
        let gate = {
            let mut ctx = Ctx {
                sim,
                core: &mut self.core,
            };
            self.proto.on_app_msg(&mut ctx, &mut msg)
        };
        match gate {
            RecvGate::Deliver { cost } => {
                // Through the work queue, never synchronously: replay
                // injections queued by the protocol hook above must reach
                // the matching engine before this message (one total FIFO
                // order across injections, re-acceptances and live
                // accepts). The queue drains within this dispatch, so
                // checkpoints still observe a consistent daemon.
                self.core.inject.push_back(Inject::Deliver {
                    src: msg.src,
                    tag: msg.tag,
                    payload: msg.payload,
                    cost,
                });
            }
            RecvGate::Drop => {}
            RecvGate::Consume => {}
        }
    }

    fn handle_app_msg(&mut self, sim: &mut Sim, msg: AppMsg) {
        let src = msg.src;
        let expected = self.core.expected_ssn[src];
        if msg.ssn < expected {
            sim.stats_mut().bump("dup_dropped");
            return;
        }
        if msg.ssn > expected {
            self.core.reorder[src].entry(msg.ssn).or_insert(msg);
            return;
        }
        self.accept(sim, msg);
        // Drain any now-contiguous reordered messages.
        loop {
            let next = self.core.expected_ssn[src];
            match self.core.reorder[src].remove(&next) {
                Some(m) => self.accept(sim, m),
                None => break,
            }
        }
    }

    fn handle_daemon_msg(&mut self, sim: &mut Sim, msg: DaemonMsg) {
        match msg {
            DaemonMsg::App(m) => {
                if self.core.recovering
                    && self.core.app_task.is_none()
                    && !self.core.topo_view().buggy_restart_window()
                {
                    // Restart window: the checkpoint image is still being
                    // fetched, so the restored channel watermarks do not
                    // exist yet. Park the message; `finish_restart`
                    // re-feeds it through the full acceptance path.
                    // (`buggy_restart_window` re-opens the pre-fix stall
                    // for the schedule explorer's self-test.)
                    self.pre_restart.push_back(m);
                } else {
                    self.handle_app_msg(sim, m)
                }
            }
            DaemonMsg::Rts { src, ssn, tag, len } => {
                let _ = (tag, len);
                // Clear-to-send immediately (receiver-side buffering).
                let cost = self.core.profile.msg_cost(0);
                let end = sim.charge_cpu(self.core.node, cost);
                let cts = DaemonMsg::Cts {
                    dst: self.core.rank,
                    ssn,
                };
                let target = self.core.topo_view().daemon(src);
                let src_node = self.core.node;
                sim.schedule_at(
                    end,
                    Event::closure(move |sim| {
                        sim.net_send(src_node, target, WireSize::control(16), Box::new(cts));
                    }),
                );
            }
            DaemonMsg::Cts { dst, ssn } => {
                if let Some(p) = self.core.pending_rdv.remove(&(dst, ssn)) {
                    self.transmit_data(sim, dst, p.tag, p.payload, ssn, SimDuration::ZERO, p.done);
                }
            }
            DaemonMsg::Proto(body) => {
                let mut ctx = Ctx {
                    sim,
                    core: &mut self.core,
                };
                self.proto.on_control(&mut ctx, body);
            }
        }
    }

    /// Processes work queued by protocol hooks until quiescent.
    fn pump(&mut self, sim: &mut Sim) {
        loop {
            if self.core.ship_requested {
                self.core.ship_requested = false;
                self.ship_image(sim);
                continue;
            }
            if self.core.release_requested {
                self.core.release_requested = false;
                // Re-gate every held message: the protocol decides which
                // ones may leave now (pessimistic logging releases sends
                // whose preceding events became stable).
                let held: Vec<HeldSend> = self.core.held.drain(..).collect();
                for h in held {
                    let gate = {
                        let mut ctx = Ctx {
                            sim,
                            core: &mut self.core,
                        };
                        self.proto
                            .on_send_accept(&mut ctx, h.dst, h.tag, h.ssn, &h.payload)
                    };
                    match gate {
                        SendGate::Go { cost } => {
                            self.transmit(sim, h.dst, h.tag, h.payload, h.ssn, cost, h.done);
                        }
                        SendGate::Hold => self.core.held.push_back(h),
                    }
                }
                continue;
            }
            let Some(inj) = self.core.inject.pop_front() else {
                break;
            };
            match inj {
                Inject::Deliver {
                    src,
                    tag,
                    payload,
                    cost,
                } => {
                    let cpu = self.core.profile.msg_cost(payload.len()) + cost;
                    let end = sim.charge_cpu(self.core.node, cpu);
                    self.core.deliver_to_matching(sim, src, tag, payload, end);
                }
                Inject::Reaccept(msg) => {
                    // Bypass the ssn check: the message was already
                    // accepted once (its ssn was consumed) or is being fed
                    // back in channel order by the protocol.
                    self.accept_reinjected(sim, msg);
                }
                Inject::InternalSend { dst, tag, payload } => {
                    let cell = sim.exec().new_op::<()>();
                    self.handle_app_send(sim, dst, tag, payload, cell);
                }
            }
        }
    }

    /// Re-acceptance of a protocol-buffered message: runs the protocol
    /// hook (it may create a determinant now) but skips duplicate
    /// detection, which already happened on first arrival. The delivery
    /// joins the same FIFO work queue as every other delivery.
    fn accept_reinjected(&mut self, sim: &mut Sim, mut msg: AppMsg) {
        let gate = {
            let mut ctx = Ctx {
                sim,
                core: &mut self.core,
            };
            self.proto.on_app_msg(&mut ctx, &mut msg)
        };
        match gate {
            RecvGate::Deliver { cost } => {
                self.core.inject.push_back(Inject::Deliver {
                    src: msg.src,
                    tag: msg.tag,
                    payload: msg.payload,
                    cost,
                });
            }
            RecvGate::Drop => {}
            RecvGate::Consume => {}
        }
    }
}

impl Actor for Vdaemon {
    fn on_poke(&mut self, sim: &mut Sim, _me: ActorId, token: u64) {
        match token {
            TOKEN_BOOT => self.boot(sim),
            _ => self.drain_pipe(sim),
        }
        self.pump(sim);
    }

    fn on_timer(&mut self, sim: &mut Sim, _me: ActorId, token: u64) {
        if token >= PROTO_TIMER_BASE {
            let mut ctx = Ctx {
                sim,
                core: &mut self.core,
            };
            self.proto.on_timer(&mut ctx, token - PROTO_TIMER_BASE);
            self.pump(sim);
        }
    }

    fn on_deliver(&mut self, sim: &mut Sim, _me: ActorId, msg: Delivery) {
        let body = msg.body;
        let body = match body.downcast::<DaemonMsg>() {
            Ok(dm) => {
                self.handle_daemon_msg(sim, *dm);
                self.pump(sim);
                return;
            }
            Err(b) => b,
        };
        let body = match body.downcast::<Internal>() {
            Ok(internal) => {
                match *internal {
                    Internal::AppFinished => {
                        self.core.finished = true;
                        // Nothing waits on a finished rank's progress:
                        // withdraw its pending expectations (e.g. a
                        // final determinant batch whose ack is still in
                        // flight when the program completes).
                        vlog_sim::causality::cancel_owner(self.core.rank as u64);
                        vlog_sim::event!("rank-finished" { rank = self.core.rank });
                        {
                            let mut ctx = Ctx {
                                sim,
                                core: &mut self.core,
                            };
                            self.proto.on_app_finished(&mut ctx);
                        }
                        if let Some((dispatcher, _)) = self.core.topo_view().dispatcher() {
                            self.core.control_to_actor(
                                sim,
                                dispatcher,
                                8,
                                Box::new(crate::dispatcher::DispatcherMsg::Done {
                                    rank: self.core.rank,
                                }),
                            );
                        }
                    }
                }
                self.pump(sim);
                return;
            }
            Err(b) => b,
        };
        if let Ok(reply) = body.downcast::<CkptReply>() {
            match *reply {
                CkptReply::FetchResp { image, .. } => {
                    if self.core.recovering && self.core.app_task.is_none() {
                        self.finish_restart(sim, image);
                    }
                }
                CkptReply::StoreAck { version, .. } => {
                    self.core.stats.local().checkpoints += 1;
                    let mut ctx = Ctx {
                        sim,
                        core: &mut self.core,
                    };
                    self.proto.on_checkpoint_committed(&mut ctx, version);
                }
                CkptReply::CompleteResp { .. } => {}
            }
            self.pump(sim);
        }
    }
}
