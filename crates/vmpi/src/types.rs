//! Common message-passing types shared by the daemon, the protocol hooks
//! and the application API.

use bytes::Bytes;
use std::any::Any;
use std::collections::BTreeSet;

/// MPI process rank.
pub type Rank = usize;
/// Message tag.
pub type Tag = u32;
/// Sender sequence number on one (source, destination) channel.
pub type Ssn = u64;
/// Reception clock: index of a reception event at one receiver.
pub type RClock = u64;

/// Fixed per-message framing added by the MPI library (kind, ranks, tag,
/// sequence numbers, lengths). Counted in the `header` byte category.
pub const MSG_HEADER_BYTES: u64 = 32;

/// An application payload. Workload skeletons usually carry *synthetic*
/// bytes (`pad`) so that multi-megabyte NAS exchanges cost nothing to
/// allocate, while correctness tests carry real `data`. The wire size is
/// the sum of both.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Payload {
    /// Real bytes, transported verbatim (used by tests and reductions).
    pub data: Bytes,
    /// Additional synthetic length, transported as size only.
    pub pad: u64,
}

impl Payload {
    /// Wraps real bytes. Length-zero inputs take a fast path: every empty
    /// payload shares the one static empty backing of [`Bytes::new`], so
    /// control-style sends allocate nothing.
    pub fn new(data: impl Into<Bytes>) -> Payload {
        let data = data.into();
        let data = if data.is_empty() { Bytes::new() } else { data };
        Payload { data, pad: 0 }
    }

    /// A payload of `len` synthetic bytes.
    pub fn synthetic(len: u64) -> Payload {
        Payload {
            data: Bytes::new(),
            pad: len,
        }
    }

    /// Wire length in bytes.
    pub fn len(&self) -> u64 {
        self.data.len() as u64 + self.pad
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Interning arena for message bodies that repeat within a run.
///
/// Workload skeletons rebuild the same small marker bodies (checkpoint
/// cursors, reduction seeds) once per rank and per iteration; without an
/// arena each build is a fresh `Vec` plus a fresh `Arc`. The arena keeps
/// one [`Bytes`] per distinct body and hands out O(1) clones, so a body
/// is allocated at most once per arena no matter how many messages carry
/// it. Lookup is by `&[u8]` (no allocation on the hit path) via the
/// `Borrow<[u8]> + Ord` impls of the vendored `bytes` shim.
///
/// The arena is deliberately not shared across threads: give each worker
/// its own (e.g. in a `thread_local!`) so interning stays lock-free.
#[derive(Debug, Default)]
pub struct PayloadArena {
    interned: BTreeSet<Bytes>,
}

impl PayloadArena {
    pub fn new() -> PayloadArena {
        PayloadArena::default()
    }

    /// Returns a shared handle to `body`, allocating only on first sight.
    /// Empty bodies never enter the set — they resolve to the static
    /// empty `Bytes`.
    pub fn intern(&mut self, body: &[u8]) -> Bytes {
        if body.is_empty() {
            return Bytes::new();
        }
        if let Some(hit) = self.interned.get(body) {
            return hit.clone();
        }
        let fresh = Bytes::copy_from_slice(body);
        self.interned.insert(fresh.clone());
        fresh
    }

    /// Builds a [`Payload`] whose `data` is the interned copy of `body`,
    /// padded with synthetic bytes up to `pad` extra wire length.
    pub fn payload(&mut self, body: &[u8], pad: u64) -> Payload {
        Payload {
            data: self.intern(body),
            pad,
        }
    }

    /// Number of distinct bodies interned so far.
    pub fn distinct(&self) -> usize {
        self.interned.len()
    }
}

/// Piggyback attached to an application message by a causal protocol.
///
/// The body stays structured (`Box<dyn Any>`) on the simulated wire — the
/// byte-exact codecs live in `vlog-core::piggyback` and compute `bytes`,
/// which is what the network model charges and Figure 7 accounts.
pub struct PiggybackBlob {
    pub body: Option<Box<dyn Any + Send>>,
    pub bytes: u64,
}

impl PiggybackBlob {
    pub fn empty() -> Self {
        PiggybackBlob {
            body: None,
            bytes: 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.body.is_none()
    }
}

impl std::fmt::Debug for PiggybackBlob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PiggybackBlob({} bytes{})",
            self.bytes,
            if self.body.is_some() { "" } else { ", empty" }
        )
    }
}

/// An application-level message travelling between two daemons.
pub struct AppMsg {
    pub src: Rank,
    pub dst: Rank,
    pub tag: Tag,
    pub ssn: Ssn,
    pub payload: Payload,
    pub piggyback: PiggybackBlob,
    /// True when this copy is a replay retransmission from a sender log.
    pub replayed: bool,
}

impl AppMsg {
    /// Header+payload+piggyback wire size of this message.
    pub fn wire_size(&self) -> vlog_sim::WireSize {
        vlog_sim::WireSize {
            header: MSG_HEADER_BYTES,
            payload: self.payload.len(),
            piggyback: self.piggyback.bytes,
            control: 0,
        }
    }
}

impl std::fmt::Debug for AppMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppMsg")
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("tag", &self.tag)
            .field("ssn", &self.ssn)
            .field("len", &self.payload.len())
            .field("pb", &self.piggyback.bytes)
            .field("replayed", &self.replayed)
            .finish()
    }
}

/// Messages exchanged between daemons (and with auxiliary servers).
pub enum DaemonMsg {
    /// Eager data message.
    App(AppMsg),
    /// Rendezvous request: "I have `len` bytes for you on `ssn`".
    Rts {
        src: Rank,
        ssn: Ssn,
        tag: Tag,
        len: u64,
    },
    /// Clear-to-send for a rendezvous transfer.
    Cts { dst: Rank, ssn: Ssn },
    /// Protocol-specific control (EL records/acks, reclaim, resends...).
    Proto(Box<dyn Any + Send>),
}

/// A message as delivered to the application.
#[derive(Debug, Clone)]
pub struct RecvMsg {
    pub src: Rank,
    pub tag: Tag,
    pub payload: Payload,
}

/// Receive selector: match a specific source/tag or any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvSelector {
    pub src: Option<Rank>,
    pub tag: Option<Tag>,
}

impl RecvSelector {
    pub fn of(src: Rank, tag: Tag) -> Self {
        RecvSelector {
            src: Some(src),
            tag: Some(tag),
        }
    }

    pub fn any() -> Self {
        RecvSelector {
            src: None,
            tag: None,
        }
    }

    pub fn matches(&self, src: Rank, tag: Tag) -> bool {
        self.src.is_none_or(|s| s == src) && self.tag.is_none_or(|t| t == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_lengths() {
        assert_eq!(Payload::new(vec![1u8, 2, 3]).len(), 3);
        assert_eq!(Payload::synthetic(1 << 20).len(), 1 << 20);
        let mixed = Payload {
            data: Bytes::from(vec![0u8; 5]),
            pad: 10,
        };
        assert_eq!(mixed.len(), 15);
        assert!(!mixed.is_empty());
        assert!(Payload::default().is_empty());
    }

    #[test]
    fn empty_payloads_share_static_backing() {
        // The fast path must kick in for every empty construction route.
        let a = Payload::new(Vec::new());
        let b = Payload::new(Bytes::new());
        let c = Payload::default();
        assert_eq!(a.data.as_ptr(), b.data.as_ptr());
        assert_eq!(a.data.as_ptr(), c.data.as_ptr());
        assert_eq!(a.len(), 0);
        // Synthetic padding rides on the same empty backing.
        assert_eq!(Payload::synthetic(512).data.as_ptr(), a.data.as_ptr());
    }

    #[test]
    fn arena_interns_repeated_bodies_once() {
        let mut arena = PayloadArena::new();
        let first = arena.intern(b"cursor-7");
        let again = arena.intern(b"cursor-7");
        assert_eq!(first.as_ptr(), again.as_ptr());
        assert_eq!(arena.distinct(), 1);
        let other = arena.intern(b"cursor-8");
        assert_ne!(first.as_ptr(), other.as_ptr());
        assert_eq!(arena.distinct(), 2);
        // Empty bodies bypass the set entirely.
        assert!(arena.intern(b"").is_empty());
        assert_eq!(arena.distinct(), 2);
        let p = arena.payload(b"cursor-7", 100);
        assert_eq!(p.data.as_ptr(), first.as_ptr());
        assert_eq!(p.len(), 8 + 100);
    }

    #[test]
    fn selector_matching() {
        let s = RecvSelector::of(3, 7);
        assert!(s.matches(3, 7));
        assert!(!s.matches(2, 7));
        assert!(!s.matches(3, 8));
        let any = RecvSelector::any();
        assert!(any.matches(0, 0));
        let any_tag = RecvSelector {
            src: Some(1),
            tag: None,
        };
        assert!(any_tag.matches(1, 99));
        assert!(!any_tag.matches(2, 99));
    }

    #[test]
    fn appmsg_wire_size_categories() {
        let m = AppMsg {
            src: 0,
            dst: 1,
            tag: 0,
            ssn: 0,
            payload: Payload::synthetic(100),
            piggyback: PiggybackBlob {
                body: None,
                bytes: 40,
            },
            replayed: false,
        };
        let w = m.wire_size();
        assert_eq!(w.header, MSG_HEADER_BYTES);
        assert_eq!(w.payload, 100);
        assert_eq!(w.piggyback, 40);
        assert_eq!(w.total(), MSG_HEADER_BYTES + 140);
    }
}
