//! Collective operations built over point-to-point messages.
//!
//! MPICH-1.2.5 implements collectives on top of the channel's p2p
//! routines, so the V-protocols see collective traffic as ordinary
//! messages — piggybacking, logging and replay apply unchanged. We do the
//! same: every collective below is a deterministic schedule of
//! sends/receives on reserved tags.
//!
//! Matching relies on per-channel FIFO order (like MPI's non-overtaking
//! rule), so collectives need no per-invocation sequence numbers — which
//! also keeps replay after a restart trivially aligned.

use bytes::Bytes;

use crate::api::{decode_f64s, encode_f64s, Mpi};
use crate::types::{Payload, Rank, RecvSelector, Tag};

/// Reserved tag space; wildcard application receives never match these.
pub const RESERVED_TAG_BASE: Tag = 0x8000_0000;
const TAG_BARRIER: Tag = RESERVED_TAG_BASE + 1;
const TAG_BCAST: Tag = RESERVED_TAG_BASE + 2;
const TAG_REDUCE: Tag = RESERVED_TAG_BASE + 3;
const TAG_ALLTOALL: Tag = RESERVED_TAG_BASE + 4;
const TAG_ALLGATHER: Tag = RESERVED_TAG_BASE + 5;
const TAG_GATHER: Tag = RESERVED_TAG_BASE + 6;

/// Combining operation for reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    fn combine(self, acc: &mut [f64], other: &[f64]) {
        assert_eq!(acc.len(), other.len(), "reduction length mismatch");
        for (a, b) in acc.iter_mut().zip(other) {
            *a = match self {
                ReduceOp::Sum => *a + *b,
                ReduceOp::Max => a.max(*b),
                ReduceOp::Min => a.min(*b),
            };
        }
    }
}

impl Mpi {
    /// Dissemination barrier: ⌈log2 n⌉ rounds of pairwise exchanges.
    pub async fn barrier(&self) {
        let n = self.size();
        if n <= 1 {
            return;
        }
        let me = self.rank();
        let mut k = 1usize;
        while k < n {
            let dst = (me + k) % n;
            let src = (me + n - k % n) % n;
            self.sendrecv(
                dst,
                TAG_BARRIER,
                Payload::default(),
                RecvSelector::of(src, TAG_BARRIER),
            )
            .await;
            k <<= 1;
        }
    }

    /// Binomial-tree broadcast from `root`. Every rank returns the
    /// payload.
    pub async fn bcast(&self, root: Rank, payload: Option<Payload>) -> Payload {
        let n = self.size();
        let me = self.rank();
        // Rank relative to the root.
        let vrank = (me + n - root) % n;
        let mut data = if me == root {
            payload.expect("root must provide the broadcast payload")
        } else {
            // Receive from parent: clear the lowest set bit of vrank.
            let parent_v = vrank & (vrank - 1);
            let parent = (parent_v + root) % n;
            self.recv_from(parent, TAG_BCAST).await.payload
        };
        // Forward to children: set bits above the lowest set bit.
        let lowest = if vrank == 0 {
            n.next_power_of_two()
        } else {
            1 << vrank.trailing_zeros()
        };
        let mut bit = lowest >> 1;
        while bit > 0 {
            let child_v = vrank | bit;
            if child_v != vrank && child_v < n {
                let child = (child_v + root) % n;
                self.send(child, TAG_BCAST, data.clone()).await;
            }
            bit >>= 1;
        }
        // The root keeps ownership; receivers got their own copy.
        if me == root {
            data = data.clone();
        }
        data
    }

    /// Binomial-tree reduction of an f64 vector to `root`. Returns the
    /// reduced vector on the root, `None` elsewhere.
    pub async fn reduce_f64(&self, root: Rank, values: &[f64], op: ReduceOp) -> Option<Vec<f64>> {
        let n = self.size();
        let me = self.rank();
        let vrank = (me + n - root) % n;
        let mut acc = values.to_vec();
        // Receive from children (low bits first, mirroring the bcast tree).
        let mut bit = 1usize;
        while bit < n {
            if vrank & bit == 0 {
                let child_v = vrank | bit;
                if child_v < n {
                    let child = (child_v + root) % n;
                    let m = self.recv_from(child, TAG_REDUCE).await;
                    op.combine(&mut acc, &decode_f64s(&m.payload.data));
                }
            } else {
                // Send to parent and stop participating.
                let parent_v = vrank & !bit;
                let parent = (parent_v + root) % n;
                self.send_bytes(parent, TAG_REDUCE, encode_f64s(&acc)).await;
                return None;
            }
            bit <<= 1;
        }
        Some(acc)
    }

    /// Allreduce = reduce to rank 0 + broadcast (the MPICH-1 default).
    pub async fn allreduce_f64(&self, values: &[f64], op: ReduceOp) -> Vec<f64> {
        let reduced = self.reduce_f64(0, values, op).await;
        let payload = reduced.map(|v| Payload::new(encode_f64s(&v)));
        let out = self.bcast(0, payload).await;
        decode_f64s(&out.data)
    }

    /// Allreduce communication pattern with synthetic payloads of
    /// `bytes` (used by workload skeletons where values don't matter).
    pub async fn allreduce_synth(&self, bytes: u64) {
        let n = self.size();
        let me = self.rank();
        // Reduce phase.
        let mut bit = 1usize;
        let mut active = true;
        while bit < n && active {
            if me & bit == 0 {
                if me | bit < n {
                    self.recv_from(me | bit, TAG_REDUCE).await;
                }
            } else {
                self.send_synth(me & !bit, TAG_REDUCE, bytes).await;
                active = false;
            }
            bit <<= 1;
        }
        // Broadcast phase.
        self.bcast(
            0,
            if me == 0 {
                Some(Payload::synthetic(bytes))
            } else {
                None
            },
        )
        .await;
    }

    /// Pairwise-exchange all-to-all. `outgoing[d]` is sent to rank `d`;
    /// returns the vector of received payloads indexed by source.
    pub async fn alltoall(&self, mut outgoing: Vec<Payload>) -> Vec<Payload> {
        let n = self.size();
        let me = self.rank();
        assert_eq!(outgoing.len(), n, "alltoall needs one payload per rank");
        let mut incoming: Vec<Payload> = vec![Payload::default(); n];
        incoming[me] = std::mem::take(&mut outgoing[me]);
        for phase in 1..n {
            let dst = (me + phase) % n;
            let src = (me + n - phase) % n;
            let m = self
                .sendrecv(
                    dst,
                    TAG_ALLTOALL,
                    std::mem::take(&mut outgoing[dst]),
                    RecvSelector::of(src, TAG_ALLTOALL),
                )
                .await;
            incoming[src] = m.payload;
        }
        incoming
    }

    /// Ring allgather: n-1 steps shifting payloads to the right
    /// neighbour. Returns payloads indexed by owner rank.
    pub async fn allgather(&self, mine: Payload) -> Vec<Payload> {
        let n = self.size();
        let me = self.rank();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let mut out: Vec<Payload> = vec![Payload::default(); n];
        out[me] = mine.clone();
        let mut cursor = mine;
        for step in 0..n.saturating_sub(1) {
            let m = self
                .sendrecv(
                    right,
                    TAG_ALLGATHER,
                    cursor,
                    RecvSelector::of(left, TAG_ALLGATHER),
                )
                .await;
            let owner = (me + n - step - 1) % n;
            out[owner] = m.payload.clone();
            cursor = m.payload;
        }
        out
    }

    /// Flat gather to `root` (each rank one direct message).
    pub async fn gather(&self, root: Rank, mine: Payload) -> Option<Vec<Payload>> {
        let n = self.size();
        let me = self.rank();
        if me == root {
            let mut out: Vec<Payload> = vec![Payload::default(); n];
            out[me] = mine;
            // Receive in deterministic source order.
            for src in 0..n {
                if src != root {
                    let m = self.recv_from(src, TAG_GATHER).await;
                    out[src] = m.payload;
                }
            }
            Some(out)
        } else {
            self.send(root, TAG_GATHER, mine).await;
            None
        }
    }

    /// Broadcast of real bytes from the root (`None` elsewhere).
    pub async fn bcast_bytes(&self, root: Rank, data: Option<Bytes>) -> Bytes {
        let payload = data.map(Payload::new);
        self.bcast(root, payload).await.data
    }
}
