//! Checkpoint images and the checkpoint server.
//!
//! The checkpoint server (paper §IV-B.2) is a stable component storing
//! remote checkpoint images. Operations are transactional: an image
//! becomes visible only when fully received (a single delivery in the
//! simulation, so atomicity is structural). For message-logging protocols
//! an image contains the process state, the payloads of logged messages
//! and the causal information (paper: *"the checkpoint image of a process
//! consists in the state of the MPI process, the payload of some messages
//! and the causal information of all events stored in the local
//! memory"*) — the protocol part travels in [`Image::proto`].

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use vlog_sim::{Actor, ActorId, Delivery, NodeId, Sim, WireSize};

use crate::types::{Payload, Rank, Ssn, Tag};

/// Base wire overhead of an image (counters, framing).
pub const IMAGE_BASE_BYTES: u64 = 64;

/// A buffered message stored inside an image (the daemon's unexpected
/// queue at checkpoint time).
#[derive(Clone, Debug)]
pub struct StoredMsg {
    pub src: Rank,
    pub tag: Tag,
    pub payload: Payload,
}

/// Protocol section of an image. `body` is protocol-defined; `bytes` is
/// its wire size.
pub struct ImageProto {
    pub body: Option<Arc<dyn Any + Send + Sync>>,
    pub bytes: u64,
}

impl Clone for ImageProto {
    fn clone(&self) -> Self {
        ImageProto {
            body: self.body.clone(),
            bytes: self.bytes,
        }
    }
}

/// A process checkpoint image.
#[derive(Clone)]
pub struct Image {
    pub rank: Rank,
    pub version: u64,
    /// Serialized application state (real bytes + synthetic padding).
    pub app_state: Payload,
    /// Next ssn per destination channel.
    pub next_ssn: Vec<Ssn>,
    /// Next expected ssn per source channel.
    pub expected_ssn: Vec<Ssn>,
    /// Messages accepted but not yet consumed by the application.
    pub unexpected: Vec<StoredMsg>,
    /// Protocol section (sender log, causality, clocks).
    pub proto: ImageProto,
}

impl Image {
    /// Total wire size of the image when it moves over the network.
    pub fn wire_bytes(&self) -> u64 {
        IMAGE_BASE_BYTES
            + self.app_state.len()
            + 16 * (self.next_ssn.len() as u64)
            + self
                .unexpected
                .iter()
                .map(|m| m.payload.len() + 16)
                .sum::<u64>()
            + self.proto.bytes
    }
}

/// Requests understood by the checkpoint server.
pub enum CkptRequest {
    /// Store an image (transactional; replaces older versions once
    /// complete).
    Store {
        image: Arc<Image>,
        reply_to: ActorId,
    },
    /// Fetch an image for a rank: a specific version or the latest.
    Fetch {
        rank: Rank,
        version: Option<u64>,
        reply_to: ActorId,
    },
    /// Highest version v such that *all* `n` ranks have stored version v
    /// (used to commit coordinated snapshots). 0 means "none".
    QueryComplete { n: usize, reply_to: ActorId },
}

/// Replies from the checkpoint server.
pub enum CkptReply {
    StoreAck {
        rank: Rank,
        version: u64,
    },
    FetchResp {
        rank: Rank,
        image: Option<Arc<Image>>,
    },
    CompleteResp {
        version: u64,
    },
}

/// CPU cost per stored/served image byte on the server (disk + memcpy),
/// ns/byte.
const SERVER_NS_PER_BYTE: f64 = 12.0;
/// Fixed per-request service cost.
const SERVER_FIXED_NS: u64 = 20_000;

/// The checkpoint server actor. Keeps the last two versions per rank so a
/// failure during a store never leaves a rank without a restorable image.
pub struct CkptServer {
    node: NodeId,
    images: Arc<Mutex<BTreeMap<Rank, BTreeMap<u64, Arc<Image>>>>>,
}

impl CkptServer {
    pub fn new(node: NodeId) -> Self {
        CkptServer {
            node,
            images: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Shared view of the stored images (tests and harnesses).
    pub fn images_handle(&self) -> Arc<Mutex<BTreeMap<Rank, BTreeMap<u64, Arc<Image>>>>> {
        self.images.clone()
    }

    fn reply(&self, sim: &mut Sim, to: ActorId, bytes: u64, reply: CkptReply) {
        let size = WireSize::control(bytes);
        if sim.actor_node(to) == self.node {
            sim.local_send(
                self.node,
                to,
                size,
                Box::new(reply),
                vlog_sim::SimDuration::from_micros(15),
            );
        } else {
            sim.net_send(self.node, to, size, Box::new(reply));
        }
    }
}

impl Actor for CkptServer {
    fn on_deliver(&mut self, sim: &mut Sim, me: ActorId, msg: Delivery) {
        let req = match msg.body.downcast::<CkptRequest>() {
            Ok(r) => *r,
            Err(_) => return, // not for us
        };
        let _ = me;
        match req {
            CkptRequest::Store { image, reply_to } => {
                let cost = vlog_sim::SimDuration::from_nanos(
                    SERVER_FIXED_NS + (image.wire_bytes() as f64 * SERVER_NS_PER_BYTE) as u64,
                );
                let end = sim.charge_cpu(self.node, cost);
                let rank = image.rank;
                let version = image.version;
                {
                    let mut store = self.images.lock().unwrap();
                    let per_rank = store.entry(rank).or_default();
                    per_rank.insert(version, image);
                    // Transactional pruning: keep the two newest versions.
                    while per_rank.len() > 2 {
                        let oldest = *per_rank.keys().next().unwrap();
                        per_rank.remove(&oldest);
                    }
                }
                let node = self.node;
                let images = self.images.clone();
                let _ = images; // state already updated; ack after service time
                let reply_to_copy = reply_to;
                sim.schedule_at(
                    end,
                    vlog_sim::Event::closure(move |sim| {
                        let reply = CkptReply::StoreAck { rank, version };
                        let size = WireSize::control(16);
                        if sim.actor_node(reply_to_copy) == node {
                            sim.local_send(
                                node,
                                reply_to_copy,
                                size,
                                Box::new(reply),
                                vlog_sim::SimDuration::from_micros(15),
                            );
                        } else {
                            sim.net_send(node, reply_to_copy, size, Box::new(reply));
                        }
                    }),
                );
            }
            CkptRequest::Fetch {
                rank,
                version,
                reply_to,
            } => {
                let image = {
                    let store = self.images.lock().unwrap();
                    store.get(&rank).and_then(|per_rank| match version {
                        Some(v) => per_rank.get(&v).cloned(),
                        None => per_rank.values().next_back().cloned(),
                    })
                };
                let bytes = image.as_ref().map_or(16, |i| i.wire_bytes());
                let cost = vlog_sim::SimDuration::from_nanos(
                    SERVER_FIXED_NS + (bytes as f64 * SERVER_NS_PER_BYTE) as u64,
                );
                let end = sim.charge_cpu(self.node, cost);
                let node = self.node;
                sim.schedule_at(
                    end,
                    vlog_sim::Event::closure(move |sim| {
                        let reply = CkptReply::FetchResp { rank, image };
                        crate::daemon::stream_control(sim, node, reply_to, bytes, Box::new(reply));
                    }),
                );
            }
            CkptRequest::QueryComplete { n, reply_to } => {
                let version = {
                    let store = self.images.lock().unwrap();
                    // Highest v present for every rank 0..n.
                    let mut v_candidates: Option<Vec<u64>> = None;
                    for r in 0..n {
                        let versions: Vec<u64> = store
                            .get(&r)
                            .map(|m| m.keys().copied().collect())
                            .unwrap_or_default();
                        v_candidates = Some(match v_candidates {
                            None => versions,
                            Some(prev) => {
                                prev.into_iter().filter(|v| versions.contains(v)).collect()
                            }
                        });
                    }
                    v_candidates
                        .unwrap_or_default()
                        .into_iter()
                        .max()
                        .unwrap_or(0)
                };
                self.reply(sim, reply_to, 16, CkptReply::CompleteResp { version });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(rank: Rank, version: u64, bytes: u64) -> Arc<Image> {
        Arc::new(Image {
            rank,
            version,
            app_state: Payload::synthetic(bytes),
            next_ssn: vec![0; 4],
            expected_ssn: vec![0; 4],
            unexpected: vec![],
            proto: ImageProto {
                body: None,
                bytes: 0,
            },
        })
    }

    struct Sink {
        got: Arc<Mutex<Vec<String>>>,
    }
    impl Actor for Sink {
        fn on_deliver(&mut self, _sim: &mut Sim, _me: ActorId, msg: Delivery) {
            let reply = msg.body.downcast::<CkptReply>().unwrap();
            let s = match *reply {
                CkptReply::StoreAck { rank, version } => format!("ack {rank} v{version}"),
                CkptReply::FetchResp { rank, ref image } => format!(
                    "fetch {rank} {}",
                    image
                        .as_ref()
                        .map_or("none".into(), |i| format!("v{}", i.version))
                ),
                CkptReply::CompleteResp { version } => format!("complete v{version}"),
            };
            self.got.lock().unwrap().push(s);
        }
    }

    fn setup() -> (Sim, ActorId, ActorId, Arc<Mutex<Vec<String>>>) {
        let mut sim = Sim::new(3);
        let server_node = sim.add_node();
        let client_node = sim.add_node();
        let server = sim.add_actor(server_node, Box::new(CkptServer::new(server_node)));
        let got = Arc::new(Mutex::new(Vec::new()));
        let client = sim.add_actor(client_node, Box::new(Sink { got: got.clone() }));
        (sim, server, client, got)
    }

    fn send_req(sim: &mut Sim, server: ActorId, req: CkptRequest, bytes: u64) {
        sim.net_send(1, server, WireSize::control(bytes), Box::new(req));
    }

    #[test]
    fn store_fetch_roundtrip() {
        let (mut sim, server, client, got) = setup();
        send_req(
            &mut sim,
            server,
            CkptRequest::Store {
                image: image(0, 1, 1000),
                reply_to: client,
            },
            1000,
        );
        sim.after(vlog_sim::SimDuration::from_millis(50), move |sim| {
            send_req(
                sim,
                server,
                CkptRequest::Fetch {
                    rank: 0,
                    version: None,
                    reply_to: client,
                },
                16,
            );
        });
        sim.run();
        assert_eq!(&*got.lock().unwrap(), &["ack 0 v1", "fetch 0 v1"]);
    }

    #[test]
    fn missing_image_fetches_none() {
        let (mut sim, server, client, got) = setup();
        send_req(
            &mut sim,
            server,
            CkptRequest::Fetch {
                rank: 5,
                version: None,
                reply_to: client,
            },
            16,
        );
        sim.run();
        assert_eq!(&*got.lock().unwrap(), &["fetch 5 none"]);
    }

    #[test]
    fn keeps_only_two_newest_versions() {
        let (mut sim, server, client, got) = setup();
        for v in 1..=4u64 {
            send_req(
                &mut sim,
                server,
                CkptRequest::Store {
                    image: image(0, v, 10),
                    reply_to: client,
                },
                10,
            );
        }
        sim.after(vlog_sim::SimDuration::from_millis(50), move |sim| {
            send_req(
                sim,
                server,
                CkptRequest::Fetch {
                    rank: 0,
                    version: Some(2),
                    reply_to: client,
                },
                16,
            );
            send_req(
                sim,
                server,
                CkptRequest::Fetch {
                    rank: 0,
                    version: Some(4),
                    reply_to: client,
                },
                16,
            );
        });
        sim.run();
        let log = got.lock().unwrap();
        assert!(log.contains(&"fetch 0 none".to_string())); // v2 pruned
        assert!(log.contains(&"fetch 0 v4".to_string()));
    }

    #[test]
    fn query_complete_takes_global_minimum() {
        let (mut sim, server, client, got) = setup();
        // rank 0 has v1, v2; rank 1 has only v1.
        for (r, v) in [(0u64, 1u64), (0, 2), (1, 1)] {
            send_req(
                &mut sim,
                server,
                CkptRequest::Store {
                    image: image(r as Rank, v, 10),
                    reply_to: client,
                },
                10,
            );
        }
        sim.after(vlog_sim::SimDuration::from_millis(50), move |sim| {
            send_req(
                sim,
                server,
                CkptRequest::QueryComplete {
                    n: 2,
                    reply_to: client,
                },
                16,
            );
        });
        sim.run();
        assert!(got.lock().unwrap().contains(&"complete v1".to_string()));
    }

    #[test]
    fn image_wire_size_accounts_all_sections() {
        let mut img = (*image(0, 1, 100)).clone();
        img.unexpected.push(StoredMsg {
            src: 1,
            tag: 0,
            payload: Payload::synthetic(50),
        });
        img.proto = ImageProto {
            body: None,
            bytes: 200,
        };
        assert_eq!(
            img.wire_bytes(),
            IMAGE_BASE_BYTES + 100 + 16 * 4 + (50 + 16) + 200
        );
    }
}
