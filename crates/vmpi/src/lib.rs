//! # vlog-vmpi — the MPICH-V framework analog
//!
//! Rust reconstruction of the generic fault-tolerance framework of
//! MPICH-V (Bosilca et al., SC'2002; Bouteiller et al., SC'2003), as used
//! by the paper *"Impact of Event Logger on Causal Message Logging
//! Protocols for Fault Tolerant MPI"* (IPDPS 2005) to compare V-protocols
//! fairly inside one shared communication layer.
//!
//! The crate provides, on top of the [`vlog_sim`] kernel:
//!
//! * [`daemon`] — the generic communication daemon (Vdaemon): pipes to
//!   the MPI process, channel sequence numbers, duplicate dropping,
//!   reordering, eager/rendezvous transport, matching, checkpoint
//!   assembly and the restart state machine;
//! * [`hooks`] — the V-protocol hook API ([`hooks::VProtocol`]) and the
//!   [`hooks::Suite`] bundling a protocol with its auxiliary components;
//! * [`api`] — the MPI-like application interface ([`api::Mpi`]) with
//!   point-to-point operations, [`collectives`], compute modelling and
//!   checkpoint points;
//! * [`vdummy`] — the trivial V-protocol measuring framework overhead;
//! * [`ckpt`] — checkpoint images and the transactional checkpoint
//!   server;
//! * [`scheduler`] — the checkpoint scheduler (round-robin / random /
//!   coordinated policies);
//! * [`dispatcher`] — job launch, fault detection, restart/rollback;
//! * [`cluster`] — the deployment builder used by every experiment.
//!
//! Fault-tolerance protocols themselves (causal message logging with its
//! three piggyback-reduction techniques, pessimistic logging, coordinated
//! checkpointing and the Event Logger) live in `vlog-core`.

pub mod api;
pub mod ckpt;
pub mod cluster;
pub mod collectives;
pub mod cost;
pub mod daemon;
pub mod dispatcher;
pub mod hooks;
pub mod phase;
pub mod pipe;
pub mod scheduler;
pub mod types;
pub mod vdummy;

pub use api::{decode_f64s, encode_f64s, Mpi};
pub use cluster::{
    run_cluster, run_vdummy, ClusterConfig, ClusterRun, FaultPlan, RunReport, SchedulePolicyFactory,
};
pub use collectives::{ReduceOp, RESERVED_TAG_BASE};
pub use cost::StackProfile;
pub use daemon::{app, AppSpec, BootMode, DaemonCore, Vdaemon};
pub use hooks::{
    Ctx, ElReshard, ProtoBlob, RankStatCell, RankStats, RecoveryStyle, RecvGate, SchedulerCmd,
    SendGate, SharedRankStats, Suite, TopoCache, TopoView, Topology, VProtocol,
};
pub use phase::{PhaseFault, PhaseFaultArmature, ProtoPhase};
pub use scheduler::{CkptScheduler, SchedulerPolicy};
pub use types::{
    AppMsg, DaemonMsg, Payload, PayloadArena, PiggybackBlob, RClock, Rank, RecvMsg, RecvSelector,
    Ssn, Tag, MSG_HEADER_BYTES,
};
pub use vdummy::{Vdummy, VdummySuite};
