//! Protocol-phase boundaries and phase-triggered fault injection.
//!
//! A timed [`crate::FaultPlan`] kills a rank at a fixed virtual instant
//! — which protocol step that instant lands on is an accident of the
//! seed and the scale. Phase faults instead crash a rank exactly when it
//! crosses an *enumerated protocol-phase boundary* (the `n`-th marker
//! broadcast, determinant shipment, Event-Logger ack, checkpoint-image
//! fetch), so a schedule explorer can enumerate the fault-timing space
//! structurally instead of sampling wall-clock instants.
//!
//! Protocols report boundary crossings through
//! [`crate::hooks::Ctx::phase_boundary`]; the cluster builder arms a
//! [`PhaseFaultArmature`] from the plan's [`PhaseFault`]s and wires it
//! to the dispatcher, so a triggered fault follows the exact crash →
//! detect → relaunch path of a timed fault.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use vlog_sim::{ActorId, Event, NodeId, Sim, SimDuration, WireSize};

use crate::dispatcher::DispatcherMsg;
use crate::types::Rank;

/// An enumerated protocol-phase boundary a rank can cross.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProtoPhase {
    /// A coordinated-checkpoint marker broadcast left this rank.
    MarkerSent,
    /// A determinant record was shipped to the Event Logger.
    DeterminantShipped,
    /// An Event-Logger stability ack was applied by this rank.
    AckReceived,
    /// This rank's checkpoint image arrived and its restart completed.
    ImageFetched,
}

/// A fault armed on a phase boundary: crash `rank` the `nth` time
/// (1-based) it crosses `phase`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseFault {
    /// Which boundary triggers the crash.
    pub phase: ProtoPhase,
    /// The rank to kill.
    pub rank: Rank,
    /// Which crossing triggers it (1 = the first).
    pub nth: u64,
}

struct ArmState {
    pending: Vec<PhaseFault>,
    counts: BTreeMap<(Rank, ProtoPhase), u64>,
}

/// Dispatcher-side wiring, installed by the cluster builder once the
/// dispatcher actor exists.
struct Wiring {
    dispatcher: ActorId,
    stable_node: NodeId,
    detect_delay: SimDuration,
    rank_nodes: Vec<NodeId>,
}

/// Shared between the cluster builder (which arms and wires it) and
/// every daemon (which reports crossings through its [`crate::Topology`]
/// handle). Genuine cross-ownership sharing, hence `Arc`; per-run, so
/// the mutex is uncontended.
pub struct PhaseFaultArmature {
    state: Mutex<ArmState>,
    wiring: Mutex<Option<Wiring>>,
}

impl PhaseFaultArmature {
    /// Arms `faults`; crossings match them in arming order.
    pub fn new(faults: Vec<PhaseFault>) -> Arc<Self> {
        Arc::new(PhaseFaultArmature {
            state: Mutex::new(ArmState {
                pending: faults,
                counts: BTreeMap::new(),
            }),
            wiring: Mutex::new(None),
        })
    }

    /// Connects the armature to the dispatcher (crash notification path).
    /// Called once by the cluster builder.
    pub fn wire(
        &self,
        dispatcher: ActorId,
        stable_node: NodeId,
        detect_delay: SimDuration,
        rank_nodes: Vec<NodeId>,
    ) {
        *self.wiring.lock().unwrap() = Some(Wiring {
            dispatcher,
            stable_node,
            detect_delay,
            rank_nodes,
        });
    }

    /// Records that `rank` crossed `phase`; when an armed fault matches,
    /// the crash is scheduled at the current instant (never re-entering
    /// the reporting handler) and the dispatcher is notified after the
    /// same detection delay a timed fault uses.
    pub fn crossed(&self, sim: &mut Sim, rank: Rank, phase: ProtoPhase) {
        let hit = {
            let mut st = self.state.lock().unwrap();
            let count = st.counts.entry((rank, phase)).or_insert(0);
            *count += 1;
            let n = *count;
            match st
                .pending
                .iter()
                .position(|f| f.rank == rank && f.phase == phase && f.nth == n)
            {
                Some(pos) => Some(st.pending.remove(pos)),
                None => None,
            }
        };
        let Some(fault) = hit else { return };
        let w = self.wiring.lock().unwrap();
        let Some(w) = w.as_ref() else { return };
        let node = w.rank_nodes[fault.rank];
        sim.schedule(
            SimDuration::ZERO,
            Event::closure(move |sim| {
                sim.crash_node(node);
            }),
        );
        let dispatcher = w.dispatcher;
        let stable_node = w.stable_node;
        let rank = fault.rank;
        sim.after(w.detect_delay, move |sim| {
            sim.local_send(
                stable_node,
                dispatcher,
                WireSize::default(),
                Box::new(DispatcherMsg::Fault { rank }),
                SimDuration::from_micros(1),
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_crossing_arithmetic_matches_in_order() {
        let arm = PhaseFaultArmature::new(vec![PhaseFault {
            phase: ProtoPhase::DeterminantShipped,
            rank: 1,
            nth: 2,
        }]);
        // Unwired armatures count crossings but cannot fire; exercised
        // here purely for the matching logic.
        let mut sim = Sim::new(1);
        arm.crossed(&mut sim, 1, ProtoPhase::DeterminantShipped);
        assert_eq!(arm.state.lock().unwrap().pending.len(), 1, "nth=2 not yet");
        arm.crossed(&mut sim, 0, ProtoPhase::DeterminantShipped);
        assert_eq!(arm.state.lock().unwrap().pending.len(), 1, "other rank");
        arm.crossed(&mut sim, 1, ProtoPhase::AckReceived);
        assert_eq!(arm.state.lock().unwrap().pending.len(), 1, "other phase");
        arm.crossed(&mut sim, 1, ProtoPhase::DeterminantShipped);
        assert!(arm.state.lock().unwrap().pending.is_empty(), "2nd crossing");
    }
}
