//! The checkpoint scheduler.
//!
//! Paper §IV-B.3: *"The checkpoint scheduler is a specific component that
//! is not necessary to insure the fault tolerance, but is intended to
//! enhance performance. [...] The checkpoint scheduler implements
//! different policies such as coordinated checkpoint, random or
//! round-robin."*
//!
//! The scheduler actor periodically commands daemons to checkpoint. The
//! command is forwarded to the protocol via `on_control` (as a
//! [`SchedulerCmd`]); the protocol decides what to do with it at the next
//! application checkpoint point.

use rand::Rng;
use vlog_sim::{Actor, ActorId, Delivery, NodeId, Sim, SimDuration, TimerHandle};

use crate::hooks::{SchedulerCmd, Topology};
use crate::types::DaemonMsg;

/// Checkpoint scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerPolicy {
    /// Never command a checkpoint.
    Disabled,
    /// Uncoordinated, staggered round-robin: rank r checkpoints at
    /// `(r+1) * period / n`, then every `period`.
    RoundRobin { period: SimDuration },
    /// Uncoordinated, uniformly random rank every `period / n`.
    Random { period: SimDuration },
    /// Global snapshots every `period` (coordinated checkpointing).
    Coordinated { period: SimDuration },
}

pub struct CkptScheduler {
    node: NodeId,
    topo: Topology,
    policy: SchedulerPolicy,
    snapshot_id: u64,
    /// Cancellable wheel handles of the armed timers: one per rank for
    /// round robin (indexed by rank), one for the other periodic
    /// policies. Rearming replaces the handle; `on_crash` cancels them
    /// so a dead scheduler's timers are freed at once instead of each
    /// reaching dispatch as a stale generation drop.
    timers: Vec<Option<TimerHandle>>,
}

impl CkptScheduler {
    pub fn new(node: NodeId, topo: Topology, policy: SchedulerPolicy) -> Self {
        let slots = match policy {
            SchedulerPolicy::Disabled => 0,
            SchedulerPolicy::RoundRobin { .. } => topo.n_ranks(),
            SchedulerPolicy::Random { .. } | SchedulerPolicy::Coordinated { .. } => 1,
        };
        CkptScheduler {
            node,
            topo,
            policy,
            snapshot_id: 0,
            timers: vec![None; slots],
        }
    }

    /// Remembers the handle of a (re)armed timer.
    fn register(&mut self, token: u64, handle: TimerHandle) {
        let slot = match self.policy {
            SchedulerPolicy::RoundRobin { .. } => token as usize,
            _ => 0,
        };
        self.timers[slot] = Some(handle);
    }

    /// Installs the scheduler actor and arms its first timers.
    pub fn install(
        sim: &mut Sim,
        node: NodeId,
        topo: Topology,
        policy: SchedulerPolicy,
    ) -> ActorId {
        sim.add_actor_with(node, |sim, id| {
            let mut scheduler = CkptScheduler::new(node, topo.clone(), policy);
            match policy {
                SchedulerPolicy::Disabled => {}
                SchedulerPolicy::RoundRobin { period } => {
                    let n = topo.n_ranks() as u64;
                    for r in 0..topo.n_ranks() {
                        let first = SimDuration::from_nanos(period.as_nanos() * (r as u64 + 1) / n);
                        let h = sim.set_timer(id, first, r as u64);
                        scheduler.register(r as u64, h);
                    }
                }
                SchedulerPolicy::Random { period } => {
                    let slice = SimDuration::from_nanos(period.as_nanos() / topo.n_ranks() as u64);
                    let h = sim.set_timer(id, slice, u64::MAX);
                    scheduler.register(u64::MAX, h);
                }
                SchedulerPolicy::Coordinated { period } => {
                    let h = sim.set_timer(id, period, u64::MAX - 1);
                    scheduler.register(u64::MAX - 1, h);
                }
            }
            Box::new(scheduler)
        })
    }

    fn command(&self, sim: &mut Sim, rank: usize, cmd: SchedulerCmd) {
        let daemon = self.topo.daemon(rank);
        let body = Box::new(DaemonMsg::Proto(Box::new(cmd)));
        let size = vlog_sim::WireSize::control(8);
        if sim.actor_node(daemon) == self.node {
            sim.local_send(self.node, daemon, size, body, SimDuration::from_micros(15));
        } else {
            sim.net_send(self.node, daemon, size, body);
        }
    }
}

impl Actor for CkptScheduler {
    fn on_deliver(&mut self, _sim: &mut Sim, _me: ActorId, _msg: Delivery) {}

    fn on_timer(&mut self, sim: &mut Sim, me: ActorId, token: u64) {
        match self.policy {
            SchedulerPolicy::Disabled => {}
            SchedulerPolicy::RoundRobin { period } => {
                let rank = token as usize;
                self.command(sim, rank, SchedulerCmd::TakeCheckpoint);
                let h = sim.set_timer(me, period, token);
                self.register(token, h);
            }
            SchedulerPolicy::Random { period } => {
                let n = self.topo.n_ranks();
                let rank = sim.rng().random_range(0..n);
                self.command(sim, rank, SchedulerCmd::TakeCheckpoint);
                let slice = SimDuration::from_nanos(period.as_nanos() / n as u64);
                let h = sim.set_timer(me, slice, token);
                self.register(token, h);
            }
            SchedulerPolicy::Coordinated { period } => {
                self.snapshot_id += 1;
                for rank in 0..self.topo.n_ranks() {
                    self.command(
                        sim,
                        rank,
                        SchedulerCmd::GlobalSnapshot {
                            id: self.snapshot_id,
                        },
                    );
                }
                let h = sim.set_timer(me, period, token);
                self.register(token, h);
            }
        }
    }

    fn on_crash(&mut self, sim: &mut Sim, _me: ActorId) {
        // Free the periodic timers now; the kernel would otherwise
        // detach them right after this hook anyway, so behaviour is
        // identical — but the intent is explicit and the handles do not
        // linger in the slot's registry.
        for h in self.timers.drain(..).flatten() {
            sim.cancel_timer(h);
        }
    }
}
