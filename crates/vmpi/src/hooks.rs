//! The V-protocol hook API.
//!
//! The paper (§IV): *"Fault tolerance protocols are designed through the
//! implementation of a set of hooks called in relevant routines of the
//! generic subsystem and some specific components. We call V-protocol such
//! an implementation."*
//!
//! [`VProtocol`] is that hook set. The generic communication daemon
//! ([`crate::daemon`]) calls into it at every relevant point: when a send
//! is accepted from the application, when a message is about to leave,
//! when a message arrives, on control traffic, on checkpoints and on
//! restart. `vlog-vmpi` ships only the trivial implementation
//! ([`crate::vdummy::Vdummy`]); the causal protocols, the pessimistic
//! protocol and coordinated checkpointing live in `vlog-core`.
//!
//! A [`Suite`] bundles a protocol with the auxiliary stable components it
//! needs (Event Logger, checkpoint scheduler policy) and is what the
//! cluster builder consumes.

use std::any::Any;
use std::sync::{Arc, Mutex};

use vlog_sim::{ActorId, NodeId, Sim, SimDuration, SimTime};

use crate::daemon::DaemonCore;
use crate::phase::{PhaseFaultArmature, ProtoPhase};
use crate::types::{AppMsg, Payload, PiggybackBlob, Rank, Ssn};

/// Where everything lives. Filled by the cluster builder before the
/// simulation starts; shared read-only with every component.
#[derive(Clone, Default)]
pub struct Topology {
    inner: Arc<Mutex<TopoInner>>,
}

#[derive(Default)]
struct TopoInner {
    daemons: Vec<ActorId>,
    nodes: Vec<NodeId>,
    /// Event Logger instances (one or several; ranks are assigned
    /// round-robin when there is more than one).
    els: Vec<(ActorId, NodeId)>,
    ckpt_server: Option<(ActorId, NodeId)>,
    dispatcher: Option<(ActorId, NodeId)>,
    /// Phase-triggered fault injection, armed by the cluster builder when
    /// the fault plan carries [`crate::PhaseFault`]s (`None` otherwise —
    /// the common case, so boundary reports stay a cheap no-op).
    phase_faults: Option<Arc<PhaseFaultArmature>>,
    /// Test hook: re-introduces the PR-5 restart-window bug (see
    /// [`crate::ClusterConfig::buggy_restart_window`]).
    buggy_restart_window: bool,
}

impl Topology {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set_ranks(&self, daemons: Vec<ActorId>, nodes: Vec<NodeId>) {
        let mut t = self.inner.lock().unwrap();
        t.daemons = daemons;
        t.nodes = nodes;
    }

    pub fn set_el(&self, actor: ActorId, node: NodeId) {
        self.inner.lock().unwrap().els = vec![(actor, node)];
    }

    /// Registers several Event Logger instances (the paper's future-work
    /// distribution; see `vlog-core::el_multi`).
    pub fn set_els(&self, els: Vec<(ActorId, NodeId)>) {
        self.inner.lock().unwrap().els = els;
    }

    /// The Event Logger serving `rank` (round-robin assignment).
    pub fn el_for(&self, rank: Rank) -> Option<(ActorId, NodeId)> {
        let t = self.inner.lock().unwrap();
        if t.els.is_empty() {
            None
        } else {
            Some(t.els[rank % t.els.len()])
        }
    }

    /// Number of Event Logger instances.
    pub fn el_count(&self) -> usize {
        self.inner.lock().unwrap().els.len()
    }

    pub fn set_ckpt_server(&self, actor: ActorId, node: NodeId) {
        self.inner.lock().unwrap().ckpt_server = Some((actor, node));
    }

    pub fn set_dispatcher(&self, actor: ActorId, node: NodeId) {
        self.inner.lock().unwrap().dispatcher = Some((actor, node));
    }

    pub fn n_ranks(&self) -> usize {
        self.inner.lock().unwrap().daemons.len()
    }

    pub fn daemon(&self, rank: Rank) -> ActorId {
        self.inner.lock().unwrap().daemons[rank]
    }

    pub fn node(&self, rank: Rank) -> NodeId {
        self.inner.lock().unwrap().nodes[rank]
    }

    pub fn el(&self) -> Option<(ActorId, NodeId)> {
        self.inner.lock().unwrap().els.first().copied()
    }

    pub fn ckpt_server(&self) -> Option<(ActorId, NodeId)> {
        self.inner.lock().unwrap().ckpt_server
    }

    pub fn dispatcher(&self) -> Option<(ActorId, NodeId)> {
        self.inner.lock().unwrap().dispatcher
    }

    /// Arms phase-triggered fault injection (cluster builder only).
    pub fn set_phase_faults(&self, arm: Arc<PhaseFaultArmature>) {
        self.inner.lock().unwrap().phase_faults = Some(arm);
    }

    /// The armed phase-fault armature, if any.
    pub fn phase_faults(&self) -> Option<Arc<PhaseFaultArmature>> {
        self.inner.lock().unwrap().phase_faults.clone()
    }

    /// Enables the restart-window test bug (cluster builder only).
    pub fn set_buggy_restart_window(&self, on: bool) {
        self.inner.lock().unwrap().buggy_restart_window = on;
    }

    /// Whether the restart-window test bug is enabled.
    pub fn buggy_restart_window(&self) -> bool {
        self.inner.lock().unwrap().buggy_restart_window
    }
}

/// Context handed to every hook: the simulation kernel plus the generic
/// part of the calling daemon.
pub struct Ctx<'a> {
    pub sim: &'a mut Sim,
    pub core: &'a mut DaemonCore,
}

impl Ctx<'_> {
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    pub fn rank(&self) -> Rank {
        self.core.rank()
    }

    pub fn n_ranks(&self) -> usize {
        self.core.n_ranks()
    }

    /// Reports that this rank just crossed `phase`. Protocols call this
    /// at their enumerated boundaries (marker broadcast, determinant
    /// shipment, EL ack); an armed [`crate::PhaseFault`] matching the
    /// crossing schedules the crash. No-op when no armature is armed.
    pub fn phase_boundary(&mut self, phase: ProtoPhase) {
        self.core.phase_boundary(self.sim, phase);
    }
}

/// Decision returned by [`VProtocol::on_send_accept`].
pub enum SendGate {
    /// Proceed to transmission (possibly after `cost` of protocol CPU).
    Go { cost: SimDuration },
    /// Park the message; the protocol releases it later through
    /// [`DaemonCore::release_held`] (pessimistic logging blocks sends
    /// until preceding events are stable).
    Hold,
}

/// Decision returned by [`VProtocol::on_app_msg`].
pub enum RecvGate {
    /// Hand the message to the matching engine after `cost` of CPU.
    Deliver { cost: SimDuration },
    /// Silently drop (duplicate of an already-received message).
    Drop,
    /// The protocol keeps the message (replay buffering, markers); it can
    /// re-inject it later through [`DaemonCore::reaccept`].
    Consume,
}

/// Protocol section of a checkpoint image: structured state plus the wire
/// size it would occupy (counted as control traffic when the image moves).
/// The body is reference-counted because the checkpoint server keeps it;
/// `Send + Sync` so checkpoint images move with a sharded cluster run.
pub struct ProtoBlob {
    pub body: Option<Arc<dyn Any + Send + Sync>>,
    pub bytes: u64,
}

impl ProtoBlob {
    pub fn empty() -> Self {
        ProtoBlob {
            body: None,
            bytes: 0,
        }
    }
}

/// The fault-tolerance hook API implemented by every V-protocol.
///
/// Default implementations are no-ops so trivial protocols (Vdummy) stay
/// trivial.
#[allow(unused_variables)]
pub trait VProtocol: Send {
    /// Short name for reports ("vcausal+el", "manetho", ...).
    fn name(&self) -> String;

    /// A send was accepted from the application and assigned `ssn`.
    /// Sender-based protocols log the payload here. Returning
    /// [`SendGate::Hold`] parks the message (pessimistic logging); held
    /// messages are re-gated through this hook when the protocol calls
    /// [`DaemonCore::release_held`], so idempotent logging is required.
    fn on_send_accept(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: Rank,
        tag: crate::types::Tag,
        ssn: Ssn,
        payload: &Payload,
    ) -> SendGate {
        SendGate::Go {
            cost: SimDuration::ZERO,
        }
    }

    /// The message `(dst, ssn)` is about to leave on the wire. Causal
    /// protocols build their piggyback here; the returned cost is the
    /// serialization CPU time (the Figure 8 "send" metric).
    fn on_transmit(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: Rank,
        ssn: Ssn,
    ) -> (PiggybackBlob, SimDuration) {
        (PiggybackBlob::empty(), SimDuration::ZERO)
    }

    /// An application message arrived (in channel order, duplicates
    /// already dropped by the generic layer). Causal protocols create the
    /// reception event, integrate the piggyback (may mutate `msg` to take
    /// it) and ship the determinant to the Event Logger here; the returned
    /// cost is the integration CPU time (the Figure 8 "receive" metric).
    fn on_app_msg(&mut self, ctx: &mut Ctx<'_>, msg: &mut AppMsg) -> RecvGate {
        RecvGate::Deliver {
            cost: SimDuration::ZERO,
        }
    }

    /// A protocol control message arrived (EL records/acks, reclaim
    /// requests, GC notices, rollback commands, ...).
    fn on_control(&mut self, ctx: &mut Ctx<'_>, body: Box<dyn Any + Send>) {}

    /// A timer set through [`DaemonCore::set_proto_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {}

    /// The application reached a checkpoint point. Return true to take a
    /// checkpoint now (uncoordinated protocols follow their scheduler,
    /// coordinated ones their marker state).
    fn checkpoint_due(&mut self, ctx: &mut Ctx<'_>) -> bool {
        false
    }

    /// The daemon is assembling a checkpoint image: contribute the
    /// protocol section (sender log, causality information, clocks).
    fn checkpoint_blob(&mut self, ctx: &mut Ctx<'_>) -> ProtoBlob {
        ProtoBlob::empty()
    }

    /// Version override for the checkpoint being taken. Coordinated
    /// snapshots return the global snapshot id; `None` uses the daemon's
    /// local counter (uncoordinated checkpoints).
    fn snapshot_version(&mut self) -> Option<u64> {
        None
    }

    /// The generic image sections were captured at the checkpoint point.
    /// The default ships immediately; coordinated checkpointing instead
    /// sends its markers and ships once every channel recording closed.
    fn on_image_assembled(&mut self, ctx: &mut Ctx<'_>, version: u64) {
        let _ = version;
        ctx.core.request_ship();
    }

    /// The checkpoint server committed image `version`; the protocol may
    /// garbage-collect and notify peers.
    fn on_checkpoint_committed(&mut self, ctx: &mut Ctx<'_>, version: u64) {}

    /// The daemon restarted from a checkpoint image (or from scratch when
    /// `blob` is `None`). The protocol starts its recovery: determinant
    /// collection, payload reclaim, replay gating. The generic layer keeps
    /// the daemon in recovering mode until
    /// [`DaemonCore::set_recovered`] is called.
    fn on_restart(&mut self, ctx: &mut Ctx<'_>, blob: Option<ProtoBlob>) {
        ctx.core.set_recovered(ctx.sim);
    }

    /// Called when the local application task finished its program.
    fn on_app_finished(&mut self, ctx: &mut Ctx<'_>) {}
}

/// Per-rank protocol statistics, shared between the protocol instance and
/// the harness that reads them after the run.
#[derive(Debug, Default, Clone)]
pub struct RankStats {
    /// Cumulative CPU time preparing piggybacks on send (Fig. 8 "send").
    pub pb_send_time: SimDuration,
    /// Cumulative CPU time integrating piggybacks on receive (Fig. 8 "receive").
    pub pb_recv_time: SimDuration,
    /// Total piggybacked events sent by this rank.
    pub pb_events_sent: u64,
    /// Total piggyback bytes sent by this rank.
    pub pb_bytes_sent: u64,
    /// Application messages sent with an empty piggyback.
    pub empty_pb_msgs: u64,
    /// Application messages sent.
    pub app_msgs_sent: u64,
    /// Determinants acknowledged stable by the Event Logger.
    pub el_acked_events: u64,
    /// Durations of determinant-collection phases during recoveries
    /// (the Figure 10 metric), in completion order.
    pub recovery_collect: Vec<SimDuration>,
    /// Durations of full recoveries (restart to live), in completion order.
    pub recovery_total: Vec<SimDuration>,
    /// Number of checkpoints committed.
    pub checkpoints: u64,
}

/// Shared handle on [`RankStats`]. Shared between successive protocol
/// incarnations of one rank (stats survive daemon restarts) and the
/// harness that reads them after the run — real sharing, hence `Arc`.
pub type SharedRankStats = Arc<Mutex<RankStats>>;

/// How the dispatcher recovers from a crash under this protocol family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStyle {
    /// Restart only the failed rank (message logging).
    SingleRank,
    /// Roll every rank back to the last committed global snapshot
    /// (coordinated checkpointing).
    GlobalRollback,
}

/// A protocol family bundled with its auxiliary components. `Send + Sync`
/// because the dispatcher's relaunch closure carries the suite into a
/// (possibly worker-thread-hosted) cluster run.
pub trait Suite: Send + Sync {
    /// Name for reports.
    fn name(&self) -> String;

    /// Installs auxiliary stable actors (Event Logger, scheduler...).
    /// Called once, before daemons are created. Stable nodes are provided
    /// by the cluster builder through `topo`.
    fn install(&self, sim: &mut Sim, topo: &Topology, stable_nodes: &[NodeId]) {
        let _ = (sim, topo, stable_nodes);
    }

    /// Creates the protocol instance for one rank.
    fn make_protocol(
        &self,
        rank: Rank,
        topo: &Topology,
        stats: SharedRankStats,
    ) -> Box<dyn VProtocol>;

    /// Recovery style for the dispatcher.
    fn recovery_style(&self) -> RecoveryStyle {
        RecoveryStyle::SingleRank
    }
}

/// Command sent by the checkpoint scheduler to a daemon (forwarded to the
/// protocol through `on_control`).
#[derive(Debug, Clone, Copy)]
pub enum SchedulerCmd {
    /// Take a checkpoint at the next checkpoint point.
    TakeCheckpoint,
    /// Begin global snapshot `id` (coordinated checkpointing).
    GlobalSnapshot { id: u64 },
}
