//! The V-protocol hook API.
//!
//! The paper (§IV): *"Fault tolerance protocols are designed through the
//! implementation of a set of hooks called in relevant routines of the
//! generic subsystem and some specific components. We call V-protocol such
//! an implementation."*
//!
//! [`VProtocol`] is that hook set. The generic communication daemon
//! ([`crate::daemon`]) calls into it at every relevant point: when a send
//! is accepted from the application, when a message is about to leave,
//! when a message arrives, on control traffic, on checkpoints and on
//! restart. `vlog-vmpi` ships only the trivial implementation
//! ([`crate::vdummy::Vdummy`]); the causal protocols, the pessimistic
//! protocol and coordinated checkpointing live in `vlog-core`.
//!
//! A [`Suite`] bundles a protocol with the auxiliary stable components it
//! needs (Event Logger, checkpoint scheduler policy) and is what the
//! cluster builder consumes.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vlog_sim::{ActorId, NodeId, Sim, SimDuration, SimTime};

use crate::daemon::DaemonCore;
use crate::phase::{PhaseFaultArmature, ProtoPhase};
use crate::types::{AppMsg, Payload, PiggybackBlob, Rank, Ssn};

/// Where everything lives. Filled by the cluster builder before the
/// simulation starts; shared read-only with every component.
///
/// Every mutator bumps an epoch counter; steady-state consumers hold a
/// [`TopoCache`] and route through an immutable [`TopoView`] snapshot,
/// re-captured only when the epoch moved — one relaxed atomic load per
/// access instead of a mutex lock.
#[derive(Clone, Default)]
pub struct Topology {
    inner: Arc<Mutex<TopoInner>>,
    epoch: Arc<AtomicU64>,
}

#[derive(Default)]
struct TopoInner {
    daemons: Vec<ActorId>,
    nodes: Vec<NodeId>,
    /// Event Logger instances (one or several; ranks are assigned
    /// through `shard_map`).
    els: Vec<(ActorId, NodeId)>,
    /// Epoch-published rank→shard map: `shard_map[rank]` indexes `els`.
    /// Seeded round-robin by [`Topology::set_els`]; rewritten by
    /// [`Topology::rebalance_after_el_failure`] when a shard dies.
    shard_map: Vec<usize>,
    /// Shards that have crashed (parallel to `els`).
    el_dead: Vec<bool>,
    ckpt_server: Option<(ActorId, NodeId)>,
    dispatcher: Option<(ActorId, NodeId)>,
    /// Phase-triggered fault injection, armed by the cluster builder when
    /// the fault plan carries [`crate::PhaseFault`]s (`None` otherwise —
    /// the common case, so boundary reports stay a cheap no-op).
    phase_faults: Option<Arc<PhaseFaultArmature>>,
    /// Test hook: re-introduces the PR-5 restart-window bug (see
    /// [`crate::ClusterConfig::buggy_restart_window`]).
    buggy_restart_window: bool,
}

impl Topology {
    pub fn new() -> Self {
        Self::default()
    }

    /// Invalidates every outstanding [`TopoCache`]. Called by all
    /// mutators; relaxed ordering suffices because a cluster run is
    /// single-threaded and cross-thread hand-off of the topology is
    /// already synchronized by the `Arc`s that carry it.
    fn bump(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Current mutation epoch (see [`TopoCache`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Captures an immutable snapshot of the topology: one lock, then
    /// lock-free reads through the returned view.
    pub fn view(&self) -> Arc<TopoView> {
        let t = self.inner.lock().unwrap();
        Arc::new(TopoView {
            daemons: t.daemons.clone(),
            nodes: t.nodes.clone(),
            els: t.els.clone(),
            shard_map: t.shard_map.clone(),
            ckpt_server: t.ckpt_server,
            dispatcher: t.dispatcher,
            phase_faults: t.phase_faults.clone(),
            buggy_restart_window: t.buggy_restart_window,
        })
    }

    pub fn set_ranks(&self, daemons: Vec<ActorId>, nodes: Vec<NodeId>) {
        {
            let mut t = self.inner.lock().unwrap();
            t.daemons = daemons;
            t.nodes = nodes;
        }
        self.bump();
    }

    pub fn set_el(&self, actor: ActorId, node: NodeId) {
        self.set_els(vec![(actor, node)]);
    }

    /// Registers the Event Logger shards and publishes the epoch-0
    /// rank→shard map (round-robin over the shard count — the historical
    /// static assignment; see `vlog-core::el_multi`).
    pub fn set_els(&self, els: Vec<(ActorId, NodeId)>) {
        {
            let mut t = self.inner.lock().unwrap();
            let k = els.len();
            t.shard_map = if k == 0 {
                Vec::new()
            } else {
                (0..t.daemons.len()).map(|r| r % k).collect()
            };
            t.el_dead = vec![false; k];
            t.els = els;
        }
        self.bump();
    }

    /// The Event Logger serving `rank`, routed through the published
    /// shard map (round-robin fallback for ranks beyond the map — the
    /// map is sized at publication time).
    pub fn el_for(&self, rank: Rank) -> Option<(ActorId, NodeId)> {
        let t = self.inner.lock().unwrap();
        if t.els.is_empty() {
            None
        } else {
            let shard = t.shard_map.get(rank).copied().unwrap_or(rank % t.els.len());
            Some(t.els[shard])
        }
    }

    /// The Event Logger shard at `index` (dead or alive).
    pub fn el_at(&self, index: usize) -> Option<(ActorId, NodeId)> {
        self.inner.lock().unwrap().els.get(index).copied()
    }

    /// Marks shard `dead` as crashed and republishes the rank→shard map
    /// over the surviving shards (each orphaned rank is reassigned
    /// round-robin over the survivors; ranks on live shards keep their
    /// assignment). Returns the new epoch, or `None` when no shard
    /// survives (total EL loss — nothing to rebalance onto).
    pub fn rebalance_after_el_failure(&self, dead: usize) -> Option<u64> {
        {
            let mut t = self.inner.lock().unwrap();
            if dead >= t.els.len() {
                return None;
            }
            t.el_dead[dead] = true;
            let survivors: Vec<usize> = (0..t.els.len()).filter(|i| !t.el_dead[*i]).collect();
            if survivors.is_empty() {
                return None;
            }
            let el_dead = t.el_dead.clone();
            for (rank, shard) in t.shard_map.iter_mut().enumerate() {
                if el_dead[*shard] {
                    *shard = survivors[rank % survivors.len()];
                }
            }
        }
        self.bump();
        Some(self.epoch())
    }

    /// Number of Event Logger instances.
    pub fn el_count(&self) -> usize {
        self.inner.lock().unwrap().els.len()
    }

    pub fn set_ckpt_server(&self, actor: ActorId, node: NodeId) {
        self.inner.lock().unwrap().ckpt_server = Some((actor, node));
        self.bump();
    }

    pub fn set_dispatcher(&self, actor: ActorId, node: NodeId) {
        self.inner.lock().unwrap().dispatcher = Some((actor, node));
        self.bump();
    }

    pub fn n_ranks(&self) -> usize {
        self.inner.lock().unwrap().daemons.len()
    }

    pub fn daemon(&self, rank: Rank) -> ActorId {
        self.inner.lock().unwrap().daemons[rank]
    }

    pub fn node(&self, rank: Rank) -> NodeId {
        self.inner.lock().unwrap().nodes[rank]
    }

    pub fn el(&self) -> Option<(ActorId, NodeId)> {
        self.inner.lock().unwrap().els.first().copied()
    }

    pub fn ckpt_server(&self) -> Option<(ActorId, NodeId)> {
        self.inner.lock().unwrap().ckpt_server
    }

    pub fn dispatcher(&self) -> Option<(ActorId, NodeId)> {
        self.inner.lock().unwrap().dispatcher
    }

    /// Arms phase-triggered fault injection (cluster builder only).
    pub fn set_phase_faults(&self, arm: Arc<PhaseFaultArmature>) {
        self.inner.lock().unwrap().phase_faults = Some(arm);
        self.bump();
    }

    /// The armed phase-fault armature, if any.
    pub fn phase_faults(&self) -> Option<Arc<PhaseFaultArmature>> {
        self.inner.lock().unwrap().phase_faults.clone()
    }

    /// Enables the restart-window test bug (cluster builder only).
    pub fn set_buggy_restart_window(&self, on: bool) {
        self.inner.lock().unwrap().buggy_restart_window = on;
        self.bump();
    }

    /// Whether the restart-window test bug is enabled.
    pub fn buggy_restart_window(&self) -> bool {
        self.inner.lock().unwrap().buggy_restart_window
    }
}

/// Immutable snapshot of a [`Topology`], captured by [`Topology::view`].
/// All accessors are lock-free; see [`TopoCache`] for the epoch-validated
/// caching pattern the daemons and protocols use.
pub struct TopoView {
    daemons: Vec<ActorId>,
    nodes: Vec<NodeId>,
    els: Vec<(ActorId, NodeId)>,
    shard_map: Vec<usize>,
    ckpt_server: Option<(ActorId, NodeId)>,
    dispatcher: Option<(ActorId, NodeId)>,
    phase_faults: Option<Arc<PhaseFaultArmature>>,
    buggy_restart_window: bool,
}

impl TopoView {
    /// The Event Logger serving `rank`, routed through the shard map
    /// this view snapshot published.
    pub fn el_for(&self, rank: Rank) -> Option<(ActorId, NodeId)> {
        self.shard_of(rank).map(|shard| self.els[shard])
    }

    /// The shard index serving `rank` under this view's published map
    /// (round-robin fallback for ranks beyond the map).
    pub fn shard_of(&self, rank: Rank) -> Option<usize> {
        if self.els.is_empty() {
            None
        } else {
            Some(
                self.shard_map
                    .get(rank)
                    .copied()
                    .unwrap_or(rank % self.els.len()),
            )
        }
    }

    /// The Event Logger shard at `index` (dead or alive).
    pub fn el_at(&self, index: usize) -> Option<(ActorId, NodeId)> {
        self.els.get(index).copied()
    }

    /// Number of Event Logger instances.
    pub fn el_count(&self) -> usize {
        self.els.len()
    }

    pub fn n_ranks(&self) -> usize {
        self.daemons.len()
    }

    pub fn daemon(&self, rank: Rank) -> ActorId {
        self.daemons[rank]
    }

    pub fn node(&self, rank: Rank) -> NodeId {
        self.nodes[rank]
    }

    pub fn el(&self) -> Option<(ActorId, NodeId)> {
        self.els.first().copied()
    }

    pub fn ckpt_server(&self) -> Option<(ActorId, NodeId)> {
        self.ckpt_server
    }

    pub fn dispatcher(&self) -> Option<(ActorId, NodeId)> {
        self.dispatcher
    }

    /// The armed phase-fault armature, if any.
    pub fn phase_faults(&self) -> Option<&Arc<PhaseFaultArmature>> {
        self.phase_faults.as_ref()
    }

    /// Whether the restart-window test bug is enabled.
    pub fn buggy_restart_window(&self) -> bool {
        self.buggy_restart_window
    }
}

/// Epoch-validated cache of a [`TopoView`]. Steady-state consumers call
/// [`TopoCache::view`] per access: one relaxed atomic load when the
/// topology has not mutated (the common case — the topology is fully
/// built before the simulation starts), a single re-snapshot when it has.
#[derive(Default)]
pub struct TopoCache {
    cached: Option<(u64, Arc<TopoView>)>,
}

impl TopoCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// The current view of `topo`, re-captured only if its epoch moved.
    pub fn view(&mut self, topo: &Topology) -> &Arc<TopoView> {
        let epoch = topo.epoch();
        let stale = match &self.cached {
            Some((cached_epoch, _)) => *cached_epoch != epoch,
            None => true,
        };
        if stale {
            self.cached = Some((epoch, topo.view()));
        }
        &self.cached.as_ref().expect("just populated").1
    }
}

/// Context handed to every hook: the simulation kernel plus the generic
/// part of the calling daemon.
pub struct Ctx<'a> {
    pub sim: &'a mut Sim,
    pub core: &'a mut DaemonCore,
}

impl Ctx<'_> {
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    pub fn rank(&self) -> Rank {
        self.core.rank()
    }

    pub fn n_ranks(&self) -> usize {
        self.core.n_ranks()
    }

    /// Reports that this rank just crossed `phase`. Protocols call this
    /// at their enumerated boundaries (marker broadcast, determinant
    /// shipment, EL ack); an armed [`crate::PhaseFault`] matching the
    /// crossing schedules the crash. No-op when no armature is armed.
    pub fn phase_boundary(&mut self, phase: ProtoPhase) {
        self.core.phase_boundary(self.sim, phase);
    }
}

/// Decision returned by [`VProtocol::on_send_accept`].
pub enum SendGate {
    /// Proceed to transmission (possibly after `cost` of protocol CPU).
    Go { cost: SimDuration },
    /// Park the message; the protocol releases it later through
    /// [`DaemonCore::release_held`] (pessimistic logging blocks sends
    /// until preceding events are stable).
    Hold,
}

/// Decision returned by [`VProtocol::on_app_msg`].
pub enum RecvGate {
    /// Hand the message to the matching engine after `cost` of CPU.
    Deliver { cost: SimDuration },
    /// Silently drop (duplicate of an already-received message).
    Drop,
    /// The protocol keeps the message (replay buffering, markers); it can
    /// re-inject it later through [`DaemonCore::reaccept`].
    Consume,
}

/// Protocol section of a checkpoint image: structured state plus the wire
/// size it would occupy (counted as control traffic when the image moves).
/// The body is reference-counted because the checkpoint server keeps it;
/// `Send + Sync` so checkpoint images move with a sharded cluster run.
pub struct ProtoBlob {
    pub body: Option<Arc<dyn Any + Send + Sync>>,
    pub bytes: u64,
}

impl ProtoBlob {
    pub fn empty() -> Self {
        ProtoBlob {
            body: None,
            bytes: 0,
        }
    }
}

/// The fault-tolerance hook API implemented by every V-protocol.
///
/// Default implementations are no-ops so trivial protocols (Vdummy) stay
/// trivial.
#[allow(unused_variables)]
pub trait VProtocol: Send {
    /// Short name for reports ("vcausal+el", "manetho", ...).
    fn name(&self) -> String;

    /// A send was accepted from the application and assigned `ssn`.
    /// Sender-based protocols log the payload here. Returning
    /// [`SendGate::Hold`] parks the message (pessimistic logging); held
    /// messages are re-gated through this hook when the protocol calls
    /// [`DaemonCore::release_held`], so idempotent logging is required.
    fn on_send_accept(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: Rank,
        tag: crate::types::Tag,
        ssn: Ssn,
        payload: &Payload,
    ) -> SendGate {
        SendGate::Go {
            cost: SimDuration::ZERO,
        }
    }

    /// The message `(dst, ssn)` is about to leave on the wire. Causal
    /// protocols build their piggyback here; the returned cost is the
    /// serialization CPU time (the Figure 8 "send" metric).
    fn on_transmit(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: Rank,
        ssn: Ssn,
    ) -> (PiggybackBlob, SimDuration) {
        (PiggybackBlob::empty(), SimDuration::ZERO)
    }

    /// An application message arrived (in channel order, duplicates
    /// already dropped by the generic layer). Causal protocols create the
    /// reception event, integrate the piggyback (may mutate `msg` to take
    /// it) and ship the determinant to the Event Logger here; the returned
    /// cost is the integration CPU time (the Figure 8 "receive" metric).
    fn on_app_msg(&mut self, ctx: &mut Ctx<'_>, msg: &mut AppMsg) -> RecvGate {
        RecvGate::Deliver {
            cost: SimDuration::ZERO,
        }
    }

    /// A protocol control message arrived (EL records/acks, reclaim
    /// requests, GC notices, rollback commands, ...).
    fn on_control(&mut self, ctx: &mut Ctx<'_>, body: Box<dyn Any + Send>) {}

    /// A timer set through [`DaemonCore::set_proto_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {}

    /// The application reached a checkpoint point. Return true to take a
    /// checkpoint now (uncoordinated protocols follow their scheduler,
    /// coordinated ones their marker state).
    fn checkpoint_due(&mut self, ctx: &mut Ctx<'_>) -> bool {
        false
    }

    /// The daemon is assembling a checkpoint image: contribute the
    /// protocol section (sender log, causality information, clocks).
    fn checkpoint_blob(&mut self, ctx: &mut Ctx<'_>) -> ProtoBlob {
        ProtoBlob::empty()
    }

    /// Version override for the checkpoint being taken. Coordinated
    /// snapshots return the global snapshot id; `None` uses the daemon's
    /// local counter (uncoordinated checkpoints).
    fn snapshot_version(&mut self) -> Option<u64> {
        None
    }

    /// The generic image sections were captured at the checkpoint point.
    /// The default ships immediately; coordinated checkpointing instead
    /// sends its markers and ships once every channel recording closed.
    fn on_image_assembled(&mut self, ctx: &mut Ctx<'_>, version: u64) {
        let _ = version;
        ctx.core.request_ship();
    }

    /// The checkpoint server committed image `version`; the protocol may
    /// garbage-collect and notify peers.
    fn on_checkpoint_committed(&mut self, ctx: &mut Ctx<'_>, version: u64) {}

    /// The daemon restarted from a checkpoint image (or from scratch when
    /// `blob` is `None`). The protocol starts its recovery: determinant
    /// collection, payload reclaim, replay gating. The generic layer keeps
    /// the daemon in recovering mode until
    /// [`DaemonCore::set_recovered`] is called.
    fn on_restart(&mut self, ctx: &mut Ctx<'_>, blob: Option<ProtoBlob>) {
        ctx.core.set_recovered(ctx.sim);
    }

    /// Called when the local application task finished its program.
    fn on_app_finished(&mut self, ctx: &mut Ctx<'_>) {}
}

/// Per-rank protocol statistics, shared between the protocol instance and
/// the harness that reads them after the run.
#[derive(Debug, Default, Clone)]
pub struct RankStats {
    /// Cumulative CPU time preparing piggybacks on send (Fig. 8 "send").
    pub pb_send_time: SimDuration,
    /// Cumulative CPU time integrating piggybacks on receive (Fig. 8 "receive").
    pub pb_recv_time: SimDuration,
    /// Total piggybacked events sent by this rank.
    pub pb_events_sent: u64,
    /// Total piggyback bytes sent by this rank.
    pub pb_bytes_sent: u64,
    /// Application messages sent with an empty piggyback.
    pub empty_pb_msgs: u64,
    /// Application messages sent.
    pub app_msgs_sent: u64,
    /// Determinants acknowledged stable by the Event Logger.
    pub el_acked_events: u64,
    /// Durations of determinant-collection phases during recoveries
    /// (the Figure 10 metric), in completion order.
    pub recovery_collect: Vec<SimDuration>,
    /// Durations of full recoveries (restart to live), in completion order.
    pub recovery_total: Vec<SimDuration>,
    /// Number of checkpoints committed.
    pub checkpoints: u64,
}

impl RankStats {
    /// Combines `other` into `self` with each field's lawful combine:
    /// counters and CPU durations add, the EL ack watermark takes the
    /// max (it is a monotone assignment, not an increment), recovery
    /// duration lists concatenate. Additive and max fields commute and
    /// associate, which is what lets per-incarnation delta cells
    /// ([`RankStatCell`]) replace a shared lock; the lists rely on
    /// cells flushing in chronological order (an incarnation's cell is
    /// dropped — and flushed — when it crashes, before its successor
    /// records anything).
    pub fn merge(&mut self, other: &RankStats) {
        self.pb_send_time += other.pb_send_time;
        self.pb_recv_time += other.pb_recv_time;
        self.pb_events_sent += other.pb_events_sent;
        self.pb_bytes_sent += other.pb_bytes_sent;
        self.empty_pb_msgs += other.empty_pb_msgs;
        self.app_msgs_sent += other.app_msgs_sent;
        self.el_acked_events = self.el_acked_events.max(other.el_acked_events);
        self.recovery_collect
            .extend_from_slice(&other.recovery_collect);
        self.recovery_total.extend_from_slice(&other.recovery_total);
        self.checkpoints += other.checkpoints;
    }
}

/// Shared handle on [`RankStats`]. Shared between successive protocol
/// incarnations of one rank (stats survive daemon restarts) and the
/// harness that reads them after the run — real sharing, hence `Arc`.
pub type SharedRankStats = Arc<Mutex<RankStats>>;

/// Write-side handle on a rank's statistics: a local [`RankStats`] delta
/// accumulated lock-free on the hot path, merged into the shared handle
/// once — on [`flush`](RankStatCell::flush) or when the cell drops (a
/// daemon/protocol incarnation dying on crash or at end-of-run).
///
/// Correctness relies on the writer split already present in the code:
/// each field has exactly one writer component per incarnation, merge is
/// commutative/associative per field ([`RankStats::merge`]), and cells
/// flush in chronological incarnation order.
pub struct RankStatCell {
    shared: SharedRankStats,
    local: RankStats,
}

impl RankStatCell {
    pub fn new(shared: SharedRankStats) -> Self {
        RankStatCell {
            shared,
            local: RankStats::default(),
        }
    }

    /// The local delta, bumped lock-free on the hot path.
    #[inline]
    pub fn local(&mut self) -> &mut RankStats {
        &mut self.local
    }

    /// A fresh cell over the same shared handle (successor incarnations
    /// after a restart share the rank's stats).
    pub fn sibling(&self) -> RankStatCell {
        RankStatCell::new(self.shared.clone())
    }

    /// The shared end-of-run handle this cell flushes into.
    pub fn shared(&self) -> SharedRankStats {
        self.shared.clone()
    }

    /// Merges the accumulated delta into the shared handle and resets
    /// the delta. One lock per flush instead of one per update.
    pub fn flush(&mut self) {
        let delta = std::mem::take(&mut self.local);
        self.shared.lock().unwrap().merge(&delta);
    }
}

impl Drop for RankStatCell {
    fn drop(&mut self) {
        self.flush();
    }
}

/// How the dispatcher recovers from a crash under this protocol family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStyle {
    /// Restart only the failed rank (message logging).
    SingleRank,
    /// Roll every rank back to the last committed global snapshot
    /// (coordinated checkpointing).
    GlobalRollback,
}

/// A protocol family bundled with its auxiliary components. `Send + Sync`
/// because the dispatcher's relaunch closure carries the suite into a
/// (possibly worker-thread-hosted) cluster run.
pub trait Suite: Send + Sync {
    /// Name for reports.
    fn name(&self) -> String;

    /// Installs auxiliary stable actors (Event Logger, scheduler...).
    /// Called once, before daemons are created. Stable nodes are provided
    /// by the cluster builder through `topo`.
    fn install(&self, sim: &mut Sim, topo: &Topology, stable_nodes: &[NodeId]) {
        let _ = (sim, topo, stable_nodes);
    }

    /// Creates the protocol instance for one rank.
    fn make_protocol(
        &self,
        rank: Rank,
        topo: &Topology,
        stats: SharedRankStats,
    ) -> Box<dyn VProtocol>;

    /// Recovery style for the dispatcher.
    fn recovery_style(&self) -> RecoveryStyle {
        RecoveryStyle::SingleRank
    }
}

/// Broadcast by the cluster's failure detector after an Event Logger
/// shard crashed and the topology republished its rank→shard map
/// (forwarded to every rank's protocol through `on_control`). Receiving
/// protocols refresh their topology view, re-route to their new shard
/// and re-ship every determinant not yet acknowledged stable — the
/// in-flight-record handoff that makes the EL service failure-tolerant.
#[derive(Debug, Clone, Copy)]
pub struct ElReshard {
    /// Topology epoch that published the rebalanced map.
    pub epoch: u64,
    /// Index of the crashed shard.
    pub dead_shard: usize,
}

/// Command sent by the checkpoint scheduler to a daemon (forwarded to the
/// protocol through `on_control`).
#[derive(Debug, Clone, Copy)]
pub enum SchedulerCmd {
    /// Take a checkpoint at the next checkpoint point.
    TakeCheckpoint,
    /// Begin global snapshot `id` (coordinated checkpointing).
    GlobalSnapshot { id: u64 },
}
