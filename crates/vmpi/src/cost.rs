//! Software cost model.
//!
//! The paper's latency table (Figure 6a) decomposes into wire time plus
//! per-layer software costs. We charge those costs in virtual time using
//! the constants below, calibrated once against the paper's measurements
//! on AthlonXP 2800+ nodes (see EXPERIMENTS.md §F6a):
//!
//! * **raw** — NetPIPE directly on TCP sockets: almost no per-message CPU.
//! * **p4** — MPICH-P4: MPI matching, packetization, one process.
//! * **vdaemon** — MPICH-V: P4-like costs *plus* the daemon hop (a pipe
//!   crossing with memcpy and a context switch on each side), which the
//!   paper quantifies as the 99.56 → 134.84 µs latency increase.
//!
//! Causal-protocol costs (event creation, piggyback serialization, graph
//! maintenance, sender-based copies) are charged by `vlog-core` through its
//! own `vlog_core::costs::CausalCosts` — this module only covers the
//! protocol-independent stack.

use vlog_sim::SimDuration;

/// Per-layer software costs of one stack configuration.
#[derive(Debug, Clone)]
pub struct StackProfile {
    /// Human-readable stack name ("MPICH-P4", "MPICH-Vdummy", ...).
    pub name: &'static str,
    /// Fixed cost of one pipe crossing between MPI process and daemon
    /// (context switch + syscalls). Zero when there is no daemon.
    pub pipe_fixed: SimDuration,
    /// Per-byte memcpy cost through the pipe (ns/byte).
    pub pipe_ns_per_byte: f64,
    /// Fixed per-message cost in the communication layer (matching,
    /// header processing, iovec packing) on each side.
    pub msg_fixed: SimDuration,
    /// Per-byte cost in the communication layer (ns/byte).
    pub msg_ns_per_byte: f64,
    /// Eager/rendezvous switch-over: payloads strictly larger than this
    /// use RTS/CTS.
    pub eager_threshold: u64,
    /// Sustained application compute rate (flops/s) used by
    /// `Mpi::compute`. Models the AthlonXP 2800+ on NPB kernels.
    pub flops_per_sec: f64,
}

impl StackProfile {
    /// NetPIPE on raw TCP sockets.
    pub fn raw() -> Self {
        StackProfile {
            name: "RAW-TCP",
            pipe_fixed: SimDuration::ZERO,
            pipe_ns_per_byte: 0.0,
            msg_fixed: SimDuration::from_nanos(1_500),
            msg_ns_per_byte: 0.0,
            eager_threshold: u64::MAX,
            flops_per_sec: 250e6,
        }
    }

    /// MPICH-P4 reference implementation (no daemon, message-level
    /// half-duplex; pair with `EthernetParams.half_duplex = true`).
    pub fn p4() -> Self {
        StackProfile {
            name: "MPICH-P4",
            pipe_fixed: SimDuration::ZERO,
            pipe_ns_per_byte: 0.0,
            msg_fixed: SimDuration::from_nanos(20_300),
            msg_ns_per_byte: 1.5,
            eager_threshold: 128 << 10,
            flops_per_sec: 250e6,
        }
    }

    /// MPICH-V generic communication layer (daemon + pipes).
    pub fn vdaemon() -> Self {
        StackProfile {
            name: "MPICH-V",
            pipe_fixed: SimDuration::from_nanos(16_500),
            pipe_ns_per_byte: 2.5,
            msg_fixed: SimDuration::from_nanos(21_500),
            msg_ns_per_byte: 1.5,
            eager_threshold: 128 << 10,
            flops_per_sec: 250e6,
        }
    }

    /// Pipe crossing cost for a message of `bytes` payload.
    pub fn pipe_cost(&self, bytes: u64) -> SimDuration {
        self.pipe_fixed + SimDuration::from_nanos((bytes as f64 * self.pipe_ns_per_byte) as u64)
    }

    /// Communication-layer cost for a message of `bytes` payload.
    pub fn msg_cost(&self, bytes: u64) -> SimDuration {
        self.msg_fixed + SimDuration::from_nanos((bytes as f64 * self.msg_ns_per_byte) as u64)
    }

    /// Virtual time to execute `flops` floating point operations.
    pub fn compute_time(&self, flops: f64) -> SimDuration {
        SimDuration::from_secs_f64(flops / self.flops_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_overhead() {
        let raw = StackProfile::raw();
        let p4 = StackProfile::p4();
        let vd = StackProfile::vdaemon();
        let one_side = |p: &StackProfile| p.pipe_cost(1) + p.msg_cost(1);
        assert!(one_side(&raw) < one_side(&p4));
        assert!(one_side(&p4) < one_side(&vd));
    }

    #[test]
    fn per_byte_costs_scale() {
        let vd = StackProfile::vdaemon();
        let small = vd.pipe_cost(1);
        let big = vd.pipe_cost(1 << 20);
        assert!(big > small);
        // 1 MiB at 2.5 ns/B ≈ 2.6 ms of memcpy.
        assert!(big.as_millis_f64() > 2.0 && big.as_millis_f64() < 3.5);
    }

    #[test]
    fn compute_time_matches_rate() {
        let vd = StackProfile::vdaemon();
        let t = vd.compute_time(250e6);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }
}
