//! The dispatcher.
//!
//! Paper §IV-B.1: *"The dispatcher [...] 1) launches the whole runtime
//! environment [...] and 2) monitors this execution, by detecting any
//! fault (node disconnection) and relaunching crashed MPI process
//! instances."*
//!
//! The dispatcher runs on a stable node. Fault injection notifies it of a
//! crash after the configured detection delay; it then either restarts
//! the failed rank ([`RecoveryStyle::SingleRank`], message logging) or
//! rolls the whole job back to the last complete global snapshot
//! ([`RecoveryStyle::GlobalRollback`], coordinated checkpointing).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vlog_sim::{Actor, ActorId, Delivery, NodeId, Sim};

use crate::ckpt::{CkptReply, CkptRequest};
use crate::daemon::BootMode;
use crate::hooks::{RecoveryStyle, Topology};
use crate::types::Rank;

/// Performs the actual relaunch of a rank: replaces the daemon actor in
/// its slot and schedules its boot poke. Built by the cluster; `Send +
/// Sync` so a cluster run (which owns the dispatcher) stays `Send`.
pub type RelaunchFn = Arc<dyn Fn(&mut Sim, Rank, BootMode) + Send + Sync>;

/// Messages addressed to the dispatcher.
pub enum DispatcherMsg {
    /// A rank's application finished its program.
    Done { rank: Rank },
    /// Fault detection reported rank `rank` dead.
    Fault { rank: Rank },
}

pub struct Dispatcher {
    node: NodeId,
    n: usize,
    topo: Topology,
    relaunch: RelaunchFn,
    style: RecoveryStyle,
    stop_on_completion: bool,
    done: BTreeSet<Rank>,
    stopped: bool,
    all_done: Arc<AtomicBool>,
}

impl Dispatcher {
    pub fn new(
        node: NodeId,
        n: usize,
        topo: Topology,
        relaunch: RelaunchFn,
        style: RecoveryStyle,
        stop_on_completion: bool,
        all_done: Arc<AtomicBool>,
    ) -> Self {
        Dispatcher {
            node,
            n,
            topo,
            relaunch,
            style,
            stop_on_completion,
            done: BTreeSet::new(),
            stopped: false,
            all_done,
        }
    }

    fn handle_fault(&mut self, sim: &mut Sim, rank: Rank) {
        sim.stats_mut().bump("dispatcher_faults");
        match self.style {
            RecoveryStyle::SingleRank => {
                (self.relaunch)(sim, rank, BootMode::Recover { version: None });
            }
            RecoveryStyle::GlobalRollback => {
                // Any completed rank will re-execute from the snapshot.
                self.done.clear();
                // Ask the checkpoint server which snapshot is complete on
                // every rank, then roll everyone back to it.
                let Some((server, _)) = self.topo.ckpt_server() else {
                    // No checkpoints at all: restart the whole job.
                    self.rollback_all(sim, 0);
                    return;
                };
                let me_actor = self.topo.dispatcher().expect("dispatcher registered").0;
                let req = CkptRequest::QueryComplete {
                    n: self.n,
                    reply_to: me_actor,
                };
                if sim.actor_node(server) == self.node {
                    sim.local_send(
                        self.node,
                        server,
                        vlog_sim::WireSize::control(16),
                        Box::new(req),
                        vlog_sim::SimDuration::from_micros(15),
                    );
                } else {
                    sim.net_send(
                        self.node,
                        server,
                        vlog_sim::WireSize::control(16),
                        Box::new(req),
                    );
                }
            }
        }
    }

    fn rollback_all(&mut self, sim: &mut Sim, version: u64) {
        sim.stats_mut().bump("global_rollbacks");
        for rank in 0..self.n {
            // Kill the surviving incarnation (app task + daemon) so stale
            // in-flight traffic is dropped by the generation check, then
            // relaunch from the snapshot.
            let node = self.topo.node(rank);
            sim.crash_node(node);
            (self.relaunch)(
                sim,
                rank,
                BootMode::Recover {
                    version: Some(version),
                },
            );
        }
    }
}

impl Actor for Dispatcher {
    fn on_deliver(&mut self, sim: &mut Sim, _me: ActorId, msg: Delivery) {
        let body = msg.body;
        let body = match body.downcast::<DispatcherMsg>() {
            Ok(m) => {
                match *m {
                    DispatcherMsg::Done { rank } => {
                        self.done.insert(rank);
                        if self.done.len() == self.n {
                            self.all_done.store(true, Ordering::Relaxed);
                            if self.stop_on_completion && !self.stopped {
                                self.stopped = true;
                                sim.stop();
                            }
                        }
                    }
                    DispatcherMsg::Fault { rank } => self.handle_fault(sim, rank),
                }
                return;
            }
            Err(b) => b,
        };
        if let Ok(reply) = body.downcast::<CkptReply>() {
            if let CkptReply::CompleteResp { version } = *reply {
                self.rollback_all(sim, version);
            }
        }
    }
}
