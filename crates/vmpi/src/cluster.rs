//! Cluster builder and runner.
//!
//! Assembles the full MPICH-V deployment of Figure 5 of the paper:
//! `n` computing nodes (each with a communication daemon and an MPI
//! process), plus two stable nodes — one hosting the checkpoint server,
//! the dispatcher and the checkpoint scheduler, the other available to
//! the protocol suite (the Event Logger lives there for causal
//! protocols) — then runs an application program to completion under an
//! optional fault plan.
//!
//! A fully built deployment is a [`ClusterRun`]: a self-contained `Send`
//! value owning the simulation, so independent `(config, seed)` runs can
//! be fanned out across worker threads (the sweep driver in `vlog-bench`
//! does exactly that). Building and running are separate so harnesses can
//! construct runs on one thread and execute them on another.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vlog_sim::{Event, NetProfile, SchedulePolicy, Sim, SimConfig, SimDuration, SimTime, Stats};

use crate::ckpt::CkptServer;
use crate::cost::StackProfile;
use crate::daemon::{AppSpec, BootMode, Vdaemon, TOKEN_BOOT};
use crate::dispatcher::{Dispatcher, DispatcherMsg, RelaunchFn};
use crate::hooks::{ElReshard, RankStats, SharedRankStats, Suite, Topology};
use crate::phase::{PhaseFault, PhaseFaultArmature, ProtoPhase};
use crate::types::Rank;

/// Factory for the kernel [`SchedulePolicy`] a run installs. A factory
/// rather than a policy because [`ClusterConfig`] is `Clone` and a
/// policy is stateful per run.
pub type SchedulePolicyFactory = Arc<dyn Fn() -> Box<dyn SchedulePolicy> + Send + Sync>;

/// Static description of one run.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of MPI ranks (each on its own computing node).
    pub ranks: usize,
    /// Software stack cost profile.
    pub profile: StackProfile,
    /// Network fabric profile.
    pub net: NetProfile,
    /// RNG seed.
    pub seed: u64,
    /// Stop the simulation when every rank finished (default true).
    pub stop_on_completion: bool,
    /// Hard event cap (runaway protection in tests).
    pub event_limit: Option<u64>,
    /// Hard virtual-time cap; the run reports `completed = false` when
    /// hit.
    pub time_limit: Option<SimDuration>,
    /// Delay between a crash and the dispatcher learning about it.
    pub detect_delay: SimDuration,
    /// Kernel schedule policy installed on the run's simulation (schedule
    /// exploration); `None` — the default — is exact FIFO dispatch.
    pub schedule_policy: Option<SchedulePolicyFactory>,
    /// Test hook (a runtime `buggy` flag, never set outside tests):
    /// re-introduces the restart-window bug — application messages
    /// arriving after a replacement daemon boots but before its
    /// checkpoint image is fetched thread straight through the
    /// not-yet-restored channel watermarks, which can stall recovery
    /// forever. Exists so the schedule explorer's self-test can prove
    /// the harness *finds* the bug.
    pub buggy_restart_window: bool,
    /// Arms a sim-time hang detector: if the run has not completed by
    /// this deadline, a watchdog timer analyzes the causality log,
    /// dumps the dangling-cause set to stderr and stops the simulation
    /// — a named diagnosis instead of a silent timeout. `None` (the
    /// default) schedules no watchdog event at all, keeping ordinary
    /// runs' schedules untouched.
    pub liveness_watchdog: Option<SimDuration>,
    /// Collect the causality log on the run's thread and attach the
    /// analyzed [`vlog_sim::causality::LivenessReport`] to the
    /// [`RunReport`]. Off by default: liveness never reaches a report
    /// (or a determinism fingerprint) unless a harness asks.
    pub export_liveness: bool,
}

impl ClusterConfig {
    pub fn new(ranks: usize) -> Self {
        ClusterConfig {
            ranks,
            profile: StackProfile::vdaemon(),
            net: NetProfile::default(),
            seed: 1,
            stop_on_completion: true,
            event_limit: None,
            time_limit: None,
            detect_delay: SimDuration::from_millis(100),
            schedule_policy: None,
            buggy_restart_window: false,
            liveness_watchdog: None,
            export_liveness: false,
        }
    }

    /// Switches to the MPICH-P4 profile (no daemon, half-duplex links).
    pub fn p4(mut self) -> Self {
        self.profile = StackProfile::p4();
        self.net.base.half_duplex = true;
        self
    }

    /// Switches to the raw-TCP profile (NetPIPE baseline).
    pub fn raw(mut self) -> Self {
        self.profile = StackProfile::raw();
        self
    }
}

/// A schedule of fail-stop faults: timed crashes and/or crashes armed on
/// protocol-phase boundaries (see [`crate::phase`]).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `(virtual time, rank)` crash events.
    pub faults: Vec<(SimDuration, Rank)>,
    /// Crashes armed on protocol-phase boundaries.
    pub phase_faults: Vec<PhaseFault>,
    /// `(virtual time, shard index)` Event Logger shard crashes. After
    /// the detection delay the topology republishes its rank→shard map
    /// and every rank is notified with an [`crate::ElReshard`].
    pub el_faults: Vec<(SimDuration, usize)>,
}

impl FaultPlan {
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// One crash of `rank` at `t`.
    pub fn kill_at(t: SimDuration, rank: Rank) -> Self {
        FaultPlan {
            faults: vec![(t, rank)],
            ..FaultPlan::default()
        }
    }

    /// One crash of `rank` the `nth` time (1-based) it crosses `phase`.
    pub fn kill_at_phase(phase: ProtoPhase, rank: Rank, nth: u64) -> Self {
        FaultPlan {
            phase_faults: vec![PhaseFault { phase, rank, nth }],
            ..FaultPlan::default()
        }
    }

    /// Adds one more crash of `rank` at `t` to the schedule (builder
    /// form, so targeted plans — hub failures, double faults — compose
    /// from `kill_at`).
    pub fn then_kill(mut self, t: SimDuration, rank: Rank) -> Self {
        self.faults.push((t, rank));
        self
    }

    /// Adds one more phase-armed crash to the schedule (builder form).
    pub fn then_kill_at_phase(mut self, phase: ProtoPhase, rank: Rank, nth: u64) -> Self {
        self.phase_faults.push(PhaseFault { phase, rank, nth });
        self
    }

    /// One crash of Event Logger shard `shard` at `t`.
    pub fn kill_el_at(t: SimDuration, shard: usize) -> Self {
        FaultPlan {
            el_faults: vec![(t, shard)],
            ..FaultPlan::default()
        }
    }

    /// Adds one more Event Logger shard crash to the schedule (builder
    /// form, so combined EL + rank fault storms compose).
    pub fn then_kill_el_at(mut self, t: SimDuration, shard: usize) -> Self {
        self.el_faults.push((t, shard));
        self
    }

    /// True when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.phase_faults.is_empty() && self.el_faults.is_empty()
    }

    /// Periodic crashes: one fault every `period` starting at `start`,
    /// cycling over ranks `0..n`, until `until`.
    pub fn periodic(start: SimDuration, period: SimDuration, n: usize, until: SimDuration) -> Self {
        let mut faults = Vec::new();
        let mut t = start;
        let mut r = 0usize;
        while t < until {
            faults.push((t, r));
            r = (r + 1) % n;
            t += period;
        }
        FaultPlan {
            faults,
            ..FaultPlan::default()
        }
    }
}

/// Everything a harness wants to know after a run.
pub struct RunReport {
    /// Name of the protocol suite.
    pub suite: String,
    /// Virtual time at which the run ended.
    pub makespan: SimDuration,
    /// True when every rank completed its program.
    pub completed: bool,
    /// Kernel statistics (bytes by category, message counts...).
    pub stats: Stats,
    /// Per-rank protocol statistics.
    pub rank_stats: Vec<RankStats>,
    /// Number of simulation events dispatched.
    pub events: u64,
    /// Analyzed causality log, present only when
    /// [`ClusterConfig::export_liveness`] (or `VLOG_CAUSALITY`)
    /// requested it — never part of a determinism fingerprint.
    pub liveness: Option<vlog_sim::causality::LivenessReport>,
}

impl RunReport {
    /// Piggybacked bytes as % of total exchanged bytes (Figure 7).
    pub fn piggyback_percent(&self) -> f64 {
        self.stats.piggyback_percent()
    }

    /// Sum of per-rank piggyback-management times (Figure 8), split
    /// (send, receive).
    pub fn pb_times(&self) -> (SimDuration, SimDuration) {
        let send = self.rank_stats.iter().map(|s| s.pb_send_time).sum();
        let recv = self.rank_stats.iter().map(|s| s.pb_recv_time).sum();
        (send, recv)
    }

    /// Message-count histogram over power-of-two wire-size buckets — the
    /// traffic shape workload harnesses report alongside the scalars.
    pub fn msg_histogram(&self) -> &vlog_sim::MsgHistogram {
        &self.stats.msg_sizes
    }

    /// Companion histogram over per-message piggyback bytes (carrying
    /// messages only): the shape of the causal metadata on the wire,
    /// where [`RunReport::piggyback_percent`] is only its volume.
    pub fn pb_histogram(&self) -> &vlog_sim::MsgHistogram {
        &self.stats.pb_sizes
    }

    // ---- Event Logger saturation gauges --------------------------------
    //
    // Recorded by the EL server actors and the logging protocols (see
    // `vlog-core::el`); zero whenever the suite ran without an EL.

    /// Peak CPU-queue depth any event record saw at an Event Logger
    /// shard on arrival (how far behind the single-threaded select-loop
    /// server fell).
    pub fn el_peak_queue_depth(&self) -> u64 {
        self.stats.get("el_peak_queue")
    }

    /// Peak number of one rank's events shipped to the Event Logger but
    /// not yet acknowledged back to it — the window that decides whether
    /// acks arrive in time to trim piggybacks.
    pub fn el_peak_outstanding(&self) -> u64 {
        self.stats.get("el_peak_outstanding")
    }

    /// Number of event records the Event Logger processed (stored plus
    /// detected duplicates).
    pub fn el_acked_records(&self) -> u64 {
        self.stats.get("el_records") + self.stats.get("el_duplicate_records")
    }

    /// Number of record batches the Event Logger acknowledged (the
    /// coalesced-ack message count; equals the record count when no
    /// batching kicked in).
    pub fn el_batches(&self) -> u64 {
        self.stats.get("el_batches")
    }

    /// Mean arrival-to-ack-send latency over every record batch an
    /// Event Logger shard acknowledged (zero without an EL).
    pub fn el_ack_latency_mean(&self) -> SimDuration {
        let n = self.stats.get("el_ack_samples");
        if n == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.stats.get_time("el_ack_latency").as_nanos() / n)
        }
    }

    /// Worst single arrival-to-ack-send latency at any Event Logger
    /// shard.
    pub fn el_ack_latency_peak(&self) -> SimDuration {
        SimDuration::from_nanos(self.stats.get("el_ack_latency_peak_ns"))
    }

    /// Per-shard saturation gauges `(peak queue depth, peak ack
    /// latency)` for shards `0..k`, read from the per-shard counter keys
    /// the EL servers record (`el_peak_queue_s{i}` /
    /// `el_ack_peak_s{i}_ns`; shards beyond 8 fold into the last slot —
    /// same tables as `vlog-core::el::shard_queue_key`/`shard_ack_key`).
    /// Makes a re-shard visible in reports: the dead shard's gauges
    /// freeze while the survivors' keep climbing.
    pub fn el_shard_gauges(&self, k: usize) -> Vec<(u64, SimDuration)> {
        (0..k.min(8))
            .map(|i| {
                (
                    self.stats.get(&format!("el_peak_queue_s{i}")),
                    SimDuration::from_nanos(self.stats.get(&format!("el_ack_peak_s{i}_ns"))),
                )
            })
            .collect()
    }

    /// Number of EL shard-failure re-shards the topology published.
    pub fn el_reshards(&self) -> u64 {
        self.stats.get("el_reshards")
    }
}

/// The hang detector: a sim-time deadline armed through the kernel's
/// cancellable timer machinery on a stable node. If the cluster has
/// not completed when the timer fires, the watchdog analyzes the
/// causality log, dumps the dangling-cause set to stderr and stops the
/// simulation — the run then reports `completed = false` with the
/// diagnosis already printed. A deadline that fires after completion
/// is a no-op (the calendar simply drains).
struct LivenessWatchdog {
    all_done: Arc<AtomicBool>,
    label: String,
}

impl vlog_sim::Actor for LivenessWatchdog {
    fn on_deliver(&mut self, _: &mut Sim, _: vlog_sim::ActorId, _: vlog_sim::Delivery) {}

    fn on_timer(&mut self, sim: &mut Sim, _me: vlog_sim::ActorId, _token: u64) {
        if self.all_done.load(Ordering::Relaxed) {
            return;
        }
        let report = vlog_sim::causality::analyze();
        eprint!(
            "{}",
            vlog_sim::causality::render(&format!("{} watchdog", self.label), &report)
        );
        sim.stats_mut().bump("liveness_watchdog_fired");
        sim.stop();
    }
}

/// A fully built, not-yet-executed cluster run. Owns the simulation and
/// every harness-side handle; `Send`, so it can be handed to a worker
/// thread and executed there (see the compile-time assertion below).
pub struct ClusterRun {
    sim: Sim,
    suite_name: String,
    rank_stats: Vec<SharedRankStats>,
    all_done: Arc<AtomicBool>,
    time_limit: Option<SimDuration>,
    export_liveness: bool,
}

// Compile-time guarantee: a complete cluster run — kernel, actors,
// protocol state, application futures, harness handles — is `Send`.
// Sharding sweeps across threads depends on this; breaking it is a
// build error, not a runtime surprise.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ClusterRun>();
    assert_send::<RunReport>();
};

impl ClusterRun {
    /// Builds the deployment for `program` on every rank under `suite`
    /// and `faults` without executing any event.
    pub fn build(
        cfg: &ClusterConfig,
        suite: Arc<dyn Suite>,
        program: AppSpec,
        faults: &FaultPlan,
    ) -> ClusterRun {
        // Pin a heterogeneous profile's fast class to the actual
        // compute/service boundary: node ids `>= ranks` are the stable
        // service nodes (checkpoint server, dispatcher, EL shards), which
        // is exactly the class the hetero-uplink profile accelerates.
        let mut net = cfg.net.clone();
        net.resolve_service_boundary(cfg.ranks);
        let mut sim = Sim::with_config(SimConfig {
            seed: cfg.seed,
            net,
            event_limit: cfg.event_limit,
        });
        if let Some(factory) = &cfg.schedule_policy {
            sim.set_schedule_policy(factory());
        }
        let topo = Topology::new();
        topo.set_buggy_restart_window(cfg.buggy_restart_window);
        let n = cfg.ranks;
        let profile = Arc::new(cfg.profile.clone());

        // Computing nodes first so node id == rank.
        let rank_nodes: Vec<_> = (0..n).map(|_| sim.add_node()).collect();
        let stable_a = sim.add_node(); // checkpoint server + dispatcher + scheduler
        let stable_b = sim.add_node(); // protocol suite components (Event Logger)

        let ckpt = sim.add_actor(stable_a, Box::new(CkptServer::new(stable_a)));
        topo.set_ckpt_server(ckpt, stable_a);

        // Per-rank stats and daemon slot reservation. The slots must exist
        // (and the topology must know the rank count) before suite components
        // such as the checkpoint scheduler are installed.
        let rank_stats: Vec<SharedRankStats> = (0..n)
            .map(|_| Arc::new(std::sync::Mutex::new(RankStats::default())))
            .collect();
        // Placeholder actor used to reserve daemon slot ids before the
        // daemons themselves exist (they need their own address).
        struct Placeholder;
        impl vlog_sim::Actor for Placeholder {
            fn on_deliver(&mut self, _: &mut Sim, _: vlog_sim::ActorId, _: vlog_sim::Delivery) {}
        }
        let mut daemon_ids = Vec::with_capacity(n);
        for rank in 0..n {
            let me = sim.add_actor(rank_nodes[rank], Box::new(Placeholder));
            daemon_ids.push(me);
        }
        topo.set_ranks(daemon_ids.clone(), rank_nodes.clone());

        // Protocol-suite components (Event Logger, checkpoint scheduler...).
        suite.install(&mut sim, &topo, &[stable_b, stable_a]);
        for rank in 0..n {
            let proto = suite.make_protocol(rank, &topo, rank_stats[rank].clone());
            let daemon = Vdaemon::new(
                rank,
                n,
                rank_nodes[rank],
                daemon_ids[rank],
                topo.clone(),
                profile.clone(),
                rank_stats[rank].clone(),
                program.clone(),
                proto,
                BootMode::Fresh,
            );
            sim.replace_actor(daemon_ids[rank], Box::new(daemon));
            sim.schedule(
                SimDuration::ZERO,
                Event::Poke {
                    actor: daemon_ids[rank],
                    token: TOKEN_BOOT,
                },
            );
        }

        // Relaunch closure used by the dispatcher.
        let relaunch: RelaunchFn = {
            let topo = topo.clone();
            let suite = suite.clone();
            let profile = profile.clone();
            let rank_stats = rank_stats.clone();
            let program = program.clone();
            Arc::new(move |sim: &mut Sim, rank: Rank, mode: BootMode| {
                let me = topo.daemon(rank);
                let proto = suite.make_protocol(rank, &topo, rank_stats[rank].clone());
                let daemon = Vdaemon::new(
                    rank,
                    topo.n_ranks(),
                    topo.node(rank),
                    me,
                    topo.clone(),
                    profile.clone(),
                    rank_stats[rank].clone(),
                    program.clone(),
                    proto,
                    mode,
                );
                sim.replace_actor(me, Box::new(daemon));
                sim.schedule(
                    SimDuration::ZERO,
                    Event::Poke {
                        actor: me,
                        token: TOKEN_BOOT,
                    },
                );
            })
        };

        let all_done = Arc::new(AtomicBool::new(false));
        let dispatcher = Dispatcher::new(
            stable_a,
            n,
            topo.clone(),
            relaunch,
            suite.recovery_style(),
            cfg.stop_on_completion,
            all_done.clone(),
        );
        let disp_id = sim.add_actor(stable_a, Box::new(dispatcher));
        topo.set_dispatcher(disp_id, stable_a);

        // Phase-armed faults: the armature is shared with every daemon
        // through the topology; it needs the dispatcher's address (which
        // now exists) to route the crash notification.
        if !faults.phase_faults.is_empty() {
            let arm = PhaseFaultArmature::new(faults.phase_faults.clone());
            arm.wire(disp_id, stable_a, cfg.detect_delay, rank_nodes.clone());
            topo.set_phase_faults(arm);
        }

        // Event Logger shard faults: crash the shard's node, then — after
        // the detection delay — republish the rank→shard map over the
        // survivors and notify every rank daemon so its protocol hands
        // its unacknowledged records over to the new shard.
        for &(t, shard) in &faults.el_faults {
            let topo_crash = topo.clone();
            sim.after(t, move |sim| {
                if let Some((_, node)) = topo_crash.el_at(shard) {
                    sim.crash_node(node);
                    sim.stats_mut().bump("el_shard_crashes");
                }
            });
            let topo_detect = topo.clone();
            let daemons = daemon_ids.clone();
            sim.after(t + cfg.detect_delay, move |sim| {
                let Some(epoch) = topo_detect.rebalance_after_el_failure(shard) else {
                    // No survivor to rebalance onto (total EL loss).
                    return;
                };
                sim.stats_mut().bump("el_reshards");
                for &daemon in &daemons {
                    sim.net_send(
                        stable_a,
                        daemon,
                        vlog_sim::WireSize::control(16),
                        Box::new(crate::types::DaemonMsg::Proto(Box::new(ElReshard {
                            epoch,
                            dead_shard: shard,
                        }))),
                    );
                }
            });
        }

        // Fault plan: crash now, notify the dispatcher after the detection
        // delay.
        for &(t, rank) in &faults.faults {
            let node = rank_nodes[rank];
            sim.after(t, move |sim| {
                sim.crash_node(node);
            });
            let detect = t + cfg.detect_delay;
            sim.after(detect, move |sim| {
                sim.local_send(
                    stable_a,
                    disp_id,
                    vlog_sim::WireSize::default(),
                    Box::new(DispatcherMsg::Fault { rank }),
                    SimDuration::from_micros(1),
                );
            });
        }

        // Hang detector: an absolute sim-time deadline on a stable node.
        // Config-gated — unarmed runs schedule no extra event, so their
        // dispatch sequence (and thus every report) is untouched.
        if let Some(deadline) = cfg.liveness_watchdog {
            let watchdog = sim.add_actor(
                stable_a,
                Box::new(LivenessWatchdog {
                    all_done: all_done.clone(),
                    label: suite.name(),
                }),
            );
            sim.set_timer(watchdog, deadline, 0);
        }

        ClusterRun {
            sim,
            suite_name: suite.name(),
            rank_stats,
            all_done,
            time_limit: cfg.time_limit,
            export_liveness: cfg.export_liveness,
        }
    }

    /// Executes the run to completion (or to the configured time limit)
    /// and reports.
    pub fn run(mut self) -> RunReport {
        // A fresh causality log per run: worker threads are pooled by
        // the sweep driver, so a previous run's edges must never leak
        // into this one's analysis.
        vlog_sim::causality::reset();
        if self.export_liveness {
            vlog_sim::causality::set_thread_enabled(true);
        }
        let completed = match self.time_limit {
            Some(tl) => {
                self.sim.run_until(SimTime::ZERO + tl);
                self.all_done.load(Ordering::Relaxed)
            }
            None => {
                self.sim.run();
                self.all_done.load(Ordering::Relaxed)
            }
        };

        // Capture every simulation-derived value, then drop the kernel:
        // dropping the actors drops the daemon/protocol stat cells, which
        // flush their lock-free deltas into the shared per-rank handles.
        // Only after that flush are the rank stats complete.
        let makespan = self.sim.now().saturating_since(SimTime::ZERO);
        let stats = self.sim.stats().clone();
        let events = self.sim.events_processed();
        drop(self.sim);

        if vlog_sim::profiler::report_each_run() {
            let readings = vlog_sim::profiler::take();
            eprint!(
                "{}",
                vlog_sim::profiler::render(&self.suite_name, &readings)
            );
        }

        // Liveness analysis reaches the report only on explicit request
        // (config export or the VLOG_CAUSALITY knob): a force-enabled
        // determinism sweep collects the log but exports nothing, so
        // its reports stay byte-identical to an uninstrumented run's.
        let want_liveness = self.export_liveness || vlog_sim::causality::report_each_run();
        let liveness = want_liveness.then(vlog_sim::causality::analyze);
        if vlog_sim::causality::report_each_run() {
            if let Some(report) = &liveness {
                eprint!("{}", vlog_sim::causality::render(&self.suite_name, report));
            }
        }
        vlog_sim::causality::reset();
        if self.export_liveness {
            vlog_sim::causality::set_thread_enabled(false);
        }

        RunReport {
            suite: self.suite_name,
            makespan,
            completed,
            stats,
            rank_stats: self
                .rank_stats
                .iter()
                .map(|s| s.lock().unwrap().clone())
                .collect(),
            events,
            liveness,
        }
    }
}

/// Builds the deployment, runs `program` on every rank under `suite` and
/// `faults`, and reports.
pub fn run_cluster(
    cfg: &ClusterConfig,
    suite: Arc<dyn Suite>,
    program: AppSpec,
    faults: &FaultPlan,
) -> RunReport {
    ClusterRun::build(cfg, suite, program, faults).run()
}

/// Convenience: run a program under [`crate::vdummy::VdummySuite`].
pub fn run_vdummy(cfg: &ClusterConfig, program: AppSpec) -> RunReport {
    run_cluster(
        cfg,
        Arc::new(crate::vdummy::VdummySuite),
        program,
        &FaultPlan::none(),
    )
}

/// Re-export of [`crate::daemon::app`] for harness ergonomics.
pub use crate::daemon::app as program;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_builders_compose() {
        let plan = FaultPlan::kill_at(SimDuration::from_millis(5), 2)
            .then_kill(SimDuration::from_millis(9), 0);
        assert_eq!(
            plan.faults,
            vec![
                (SimDuration::from_millis(5), 2),
                (SimDuration::from_millis(9), 0)
            ]
        );
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn el_gauge_accessors_read_the_counters() {
        let mut stats = Stats::new();
        stats.set_max("el_peak_queue", 7);
        stats.set_max("el_peak_outstanding", 3);
        stats.add("el_records", 4);
        stats.add("el_duplicate_records", 1);
        stats.add("el_batches", 2);
        stats.add("el_ack_samples", 5);
        stats.add_time("el_ack_latency", SimDuration::from_micros(50));
        stats.set_max("el_ack_latency_peak_ns", 20_000);
        stats.set_max("el_peak_queue_s0", 7);
        stats.set_max("el_ack_peak_s0_ns", 20_000);
        let report = RunReport {
            suite: "test".into(),
            makespan: SimDuration::ZERO,
            completed: true,
            stats,
            rank_stats: Vec::new(),
            events: 0,
            liveness: None,
        };
        assert_eq!(report.el_peak_queue_depth(), 7);
        assert_eq!(report.el_peak_outstanding(), 3);
        assert_eq!(report.el_acked_records(), 5);
        assert_eq!(report.el_batches(), 2);
        assert_eq!(report.el_ack_latency_mean(), SimDuration::from_micros(10));
        assert_eq!(report.el_ack_latency_peak(), SimDuration::from_micros(20));
        assert_eq!(
            report.el_shard_gauges(2),
            vec![(7, SimDuration::from_micros(20)), (0, SimDuration::ZERO)]
        );
        assert_eq!(report.el_reshards(), 0);
    }

    #[test]
    fn el_gauges_are_zero_without_an_event_logger() {
        let report = RunReport {
            suite: "test".into(),
            makespan: SimDuration::ZERO,
            completed: true,
            stats: Stats::new(),
            rank_stats: Vec::new(),
            events: 0,
            liveness: None,
        };
        assert_eq!(report.el_peak_queue_depth(), 0);
        assert_eq!(report.el_peak_outstanding(), 0);
        assert_eq!(report.el_ack_latency_mean(), SimDuration::ZERO);
    }
}
