//! Vdummy: the trivial V-protocol.
//!
//! Paper §IV: *"Vdummy is a trivial implementation of these hooks which
//! does not provide any fault tolerance (equivalent to the MPICH-P4
//! reference implementation). It is used to measure the raw performances
//! of the generic communication layer."*

use crate::hooks::{SharedRankStats, Suite, Topology, VProtocol};
use crate::types::Rank;

/// The no-op protocol: every hook keeps its default behaviour.
pub struct Vdummy;

impl VProtocol for Vdummy {
    fn name(&self) -> String {
        "vdummy".into()
    }
}

/// Suite installing nothing and producing [`Vdummy`] protocols.
pub struct VdummySuite;

impl Suite for VdummySuite {
    fn name(&self) -> String {
        "MPICH-Vdummy".into()
    }

    fn make_protocol(
        &self,
        _rank: Rank,
        _topo: &Topology,
        _stats: SharedRankStats,
    ) -> Box<dyn VProtocol> {
        Box::new(Vdummy)
    }
}
