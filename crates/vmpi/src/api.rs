//! The application-facing MPI-like API.
//!
//! Programs are `async` closures receiving an [`Mpi`] handle:
//!
//! ```ignore
//! cluster.launch(|mpi| async move {
//!     if mpi.rank() == 0 {
//!         mpi.send_bytes(1, 0, vec![1, 2, 3]).await;
//!     } else {
//!         let m = mpi.recv(RecvSelector::of(0, 0)).await;
//!         assert_eq!(&m.payload.data[..], &[1, 2, 3]);
//!     }
//! });
//! ```
//!
//! All operations are mediated by the communication daemon through the
//! pipe; the handle itself never touches the simulation kernel, which
//! keeps application code oblivious to the fault-tolerance protocol
//! underneath — exactly the transparency the paper's framework provides.

use bytes::Bytes;
use vlog_sim::{ActorId, ExecHandle, OpCell, SimDuration, SimTime};

use std::sync::Arc;

use crate::cost::StackProfile;
use crate::pipe::{AppRequest, SharedPipe};
use crate::types::{Payload, Rank, RecvMsg, RecvSelector, Tag};

/// Handle on a posted send.
pub struct SendHandle {
    cell: OpCell<()>,
}

impl SendHandle {
    /// Completes when the message was accepted by the daemon (eager) or
    /// handed to the wire (rendezvous).
    pub async fn wait(self) {
        self.cell.wait().await
    }
}

/// Handle on a posted receive.
pub struct RecvHandle {
    cell: OpCell<RecvMsg>,
}

impl RecvHandle {
    pub async fn wait(self) -> RecvMsg {
        self.cell.wait().await
    }
}

/// Per-process MPI handle. Cheap to clone; one per application
/// incarnation.
#[derive(Clone)]
pub struct Mpi {
    rank: Rank,
    n: usize,
    exec: ExecHandle,
    pipe: SharedPipe,
    daemon: ActorId,
    profile: Arc<StackProfile>,
    restored: Option<Bytes>,
}

impl Mpi {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: Rank,
        n: usize,
        exec: ExecHandle,
        pipe: SharedPipe,
        daemon: ActorId,
        profile: Arc<StackProfile>,
        restored: Option<Bytes>,
    ) -> Mpi {
        Mpi {
            rank,
            n,
            exec,
            pipe,
            daemon,
            profile,
            restored,
        }
    }

    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.n
    }

    /// State restored from a checkpoint image after a restart, if any.
    /// Programs use it to fast-forward to the checkpointed iteration.
    pub fn restored(&self) -> Option<&Bytes> {
        self.restored.as_ref()
    }

    /// Current virtual time (what `MPI_Wtime` would return).
    pub fn time(&self) -> SimTime {
        self.exec.now()
    }

    fn push(&self, req: AppRequest, pipe_bytes: u64) {
        self.pipe.lock().unwrap().queue.push_back(req);
        let delay = self.profile.pipe_cost(pipe_bytes);
        self.exec.stage_poke(delay, self.daemon, 0);
    }

    /// Posts a non-blocking send.
    pub fn isend(&self, dst: Rank, tag: Tag, payload: Payload) -> SendHandle {
        assert!(dst < self.n, "isend to unknown rank {dst}");
        let done = self.exec.new_op::<()>();
        let bytes = payload.len();
        self.push(
            AppRequest::Send {
                dst,
                tag,
                payload,
                done: done.clone(),
            },
            bytes,
        );
        SendHandle { cell: done }
    }

    /// Blocking send of a payload.
    pub async fn send(&self, dst: Rank, tag: Tag, payload: Payload) {
        self.isend(dst, tag, payload).wait().await
    }

    /// Blocking send of real bytes.
    pub async fn send_bytes(&self, dst: Rank, tag: Tag, data: impl Into<Bytes>) {
        self.send(dst, tag, Payload::new(data.into())).await
    }

    /// Blocking send of `len` synthetic bytes.
    pub async fn send_synth(&self, dst: Rank, tag: Tag, len: u64) {
        self.send(dst, tag, Payload::synthetic(len)).await
    }

    /// Posts a non-blocking receive.
    pub fn irecv(&self, sel: RecvSelector) -> RecvHandle {
        let cell = self.exec.new_op::<RecvMsg>();
        self.push(
            AppRequest::Recv {
                sel,
                cell: cell.clone(),
            },
            0,
        );
        RecvHandle { cell }
    }

    /// Blocking receive.
    pub async fn recv(&self, sel: RecvSelector) -> RecvMsg {
        self.irecv(sel).wait().await
    }

    /// Blocking receive from a specific source and tag.
    pub async fn recv_from(&self, src: Rank, tag: Tag) -> RecvMsg {
        self.recv(RecvSelector::of(src, tag)).await
    }

    /// Simultaneous send and receive (the send is posted first, so the
    /// exchange cannot deadlock even against another `sendrecv`).
    pub async fn sendrecv(
        &self,
        dst: Rank,
        tag: Tag,
        payload: Payload,
        sel: RecvSelector,
    ) -> RecvMsg {
        let s = self.isend(dst, tag, payload);
        let m = self.recv(sel).await;
        s.wait().await;
        m
    }

    /// Executes `flops` floating-point operations of pure computation.
    pub async fn compute(&self, flops: f64) {
        self.exec.sleep(self.profile.compute_time(flops)).await
    }

    /// Lets `dur` of virtual time pass (non-flop work).
    pub async fn elapse(&self, dur: SimDuration) {
        self.exec.sleep(dur).await
    }

    /// Offers a checkpoint at an application-safe point. The protocol's
    /// scheduler decides whether one is actually taken; returns true when
    /// it was. The image streams to the checkpoint server in the
    /// background — the call only pays the local snapshot cost.
    pub async fn checkpoint_point(&self, state: Payload) -> bool {
        let done = self.exec.new_op::<bool>();
        let bytes = state.len();
        self.push(
            AppRequest::Checkpoint {
                state,
                done: done.clone(),
            },
            bytes,
        );
        done.wait().await
    }

    /// The stack profile in effect (used by workloads to convert between
    /// flops and time).
    pub fn profile(&self) -> &StackProfile {
        &self.profile
    }
}

/// Encodes a slice of f64 as little-endian bytes (reduction payloads).
pub fn encode_f64s(values: &[f64]) -> Bytes {
    let mut v = Vec::with_capacity(values.len() * 8);
    for x in values {
        v.extend_from_slice(&x.to_le_bytes());
    }
    Bytes::from(v)
}

/// Decodes little-endian f64 bytes produced by [`encode_f64s`].
pub fn decode_f64s(data: &Bytes) -> Vec<f64> {
    assert!(data.len() % 8 == 0, "truncated f64 payload");
    data.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let xs = vec![0.0, -1.5, std::f64::consts::PI, 1e300];
        let b = encode_f64s(&xs);
        assert_eq!(b.len(), 32);
        assert_eq!(decode_f64s(&b), xs);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_f64s_panic() {
        decode_f64s(&Bytes::from(vec![1u8, 2, 3]));
    }
}
