//! The pipe between an MPI process and its communication daemon.
//!
//! In MPICH-V the MPI process never touches the network: it talks to the
//! Vdaemon through a pair of system pipes (paper §IV-A). Here the pipe is
//! a shared request queue: the application task pushes a request and
//! stages a *poke* for the daemon actor, delayed by the modelled pipe
//! crossing cost; the daemon drains the queue when the poke fires.
//!
//! The queue is one of the two places where sharing is real (application
//! task ↔ daemon actor), so it is an `Arc<Mutex<…>>` — which keeps the
//! whole cluster run `Send`. Each application incarnation gets a fresh
//! queue, so requests from a killed incarnation can never leak into its
//! successor.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use vlog_sim::OpCell;

use crate::types::{Payload, Rank, RecvMsg, RecvSelector, Tag};

/// A request from the application to its daemon.
pub enum AppRequest {
    /// Post a send; `done` completes when the daemon accepted the message
    /// (eager) or handed it to the wire (rendezvous).
    Send {
        dst: Rank,
        tag: Tag,
        payload: Payload,
        done: OpCell<()>,
    },
    /// Post a receive; `cell` completes when a matching message reaches
    /// the application side of the pipe.
    Recv {
        sel: RecvSelector,
        cell: OpCell<RecvMsg>,
    },
    /// The application reached a checkpoint point; `state` is its
    /// serialized state (real bytes + synthetic padding). `done` resolves
    /// to whether a checkpoint was actually taken.
    Checkpoint { state: Payload, done: OpCell<bool> },
}

/// The application side of one pipe.
pub struct PipeBox {
    pub queue: VecDeque<AppRequest>,
}

impl PipeBox {
    pub fn new() -> SharedPipe {
        Arc::new(Mutex::new(PipeBox {
            queue: VecDeque::new(),
        }))
    }
}

pub type SharedPipe = Arc<Mutex<PipeBox>>;

/// What the daemon hands a freshly spawned application task.
pub struct AppBoot {
    /// State restored from a checkpoint image, if any.
    pub restored: Option<Bytes>,
}
