//! Offline API-subset shim of the `rand` crate (0.9-era naming).
//!
//! Deterministic, seedable randomness for the simulation kernel and the
//! property-test harness: [`rngs::SmallRng`] is xoshiro256++ seeded via
//! SplitMix64 — the same generator family the real crate uses for
//! `SmallRng` on 64-bit targets — so streams are identical for equal
//! seeds, reproducible forever, and dependency-free.

use std::ops::{Range, RangeInclusive};

/// A random number generator: the minimal core every consumer builds on.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let raw = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from one `u64` via a SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open or inclusive integer range.
    /// Panics on an empty range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their natural domain by [`Rng::random`].
pub trait Standard: Sized {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

impl Standard for bool {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> u32 {
        rng.next_u32()
    }
}

/// Ranges [`Rng::random_range`] accepts.
pub trait SampleRange {
    type Output;
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> Self::Output;
}

/// Uniform `u64` in `[0, span)` by 128-bit widening multiply.
fn sample_span<G: RngCore + ?Sized>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_span(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, far more state than this workload
    /// needs; matches the real crate's 64-bit `SmallRng` family.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce it from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_sampling_is_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never sampled");
        for _ in 0..1_000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_handles_ragged_tail() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
