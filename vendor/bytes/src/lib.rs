//! Offline API-subset shim of the `bytes` crate.
//!
//! Provides exactly the surface this workspace uses — a cheaply clonable
//! immutable [`Bytes`] buffer with consuming little-endian reads, a
//! growable [`BytesMut`] builder, and the [`Buf`]/[`BufMut`] traits with
//! the `*_le` accessors. Semantics match the real crate on this subset
//! (vendor policy: API subset only, no behavioral divergence).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable slice of memory.
///
/// Clones share one allocation; consuming reads ([`Buf`]) and
/// [`Bytes::split_off`]/[`Bytes::split_to`] only move offsets.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

/// Shared backing of every empty `Bytes`: [`Bytes::new`] and
/// `Bytes::from(vec![])` are one refcount bump, never an allocation.
fn empty_arc() -> Arc<[u8]> {
    static EMPTY: std::sync::OnceLock<Arc<[u8]>> = std::sync::OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(&[][..])).clone()
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Bytes {
    /// Creates an empty `Bytes`. Allocation-free: every empty `Bytes`
    /// shares one static backing.
    pub fn new() -> Bytes {
        Bytes {
            data: empty_arc(),
            start: 0,
            end: 0,
        }
    }

    /// Creates a `Bytes` owning a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Remaining length (reads consume from the front).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the bytes from `at` onward, keeping
    /// `[0, at)` in `self`. O(1), shares the allocation.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            data: self.data.clone(),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// Splits off and returns the first `at` bytes, keeping the rest in
    /// `self`. O(1), shares the allocation.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Returns a new `Bytes` for the given subrange. O(1).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the remaining bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        if v.is_empty() {
            return Bytes::new();
        }
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes::from(v.into_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

/// A growable byte buffer used to build messages.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.inner {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { inner: v }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.inner.extend(iter);
    }
}

/// Read access to a buffer of bytes; reads consume from the front.
pub trait Buf {
    /// Bytes remaining between the cursor and the end.
    fn remaining(&self) -> usize;

    /// The remaining bytes as one contiguous slice (this shim is always
    /// contiguous).
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Copies `dst.len()` bytes from the buffer into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// Write access to a growable buffer of bytes.
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bytes_share_one_backing() {
        let a = Bytes::new();
        let b = Bytes::from(Vec::new());
        let c = Bytes::default();
        assert!(a.is_empty() && b.is_empty() && c.is_empty());
        assert!(Arc::ptr_eq(&a.data, &b.data));
        assert!(Arc::ptr_eq(&a.data, &c.data));
        // Non-empty construction still gets its own allocation.
        let d = Bytes::from(vec![1]);
        assert!(!Arc::ptr_eq(&a.data, &d.data));
    }

    #[test]
    fn roundtrip_le_accessors() {
        let mut out = BytesMut::with_capacity(14);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        assert_eq!(out.len(), 14);
        let mut b = out.freeze();
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert!(b.is_empty());
    }

    #[test]
    fn clone_is_shallow_and_independent() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        a.advance(2);
        assert_eq!(&a[..], &[3, 4]);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn split_off_and_to() {
        let mut a = Bytes::from(vec![1, 2, 3, 4, 5]);
        let tail = a.split_off(3);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(&tail[..], &[4, 5]);
        let mut c = Bytes::from(vec![9, 8, 7]);
        let head = c.split_to(1);
        assert_eq!(&head[..], &[9]);
        assert_eq!(&c[..], &[8, 7]);
    }

    #[test]
    fn slice_and_eq() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(a.slice(1..3), Bytes::from(vec![2, 3]));
        assert_eq!(a, vec![1, 2, 3, 4]);
        assert_eq!(a.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn debug_is_escaped_literal() {
        let a = Bytes::from(vec![b'h', b'i', 0]);
        assert_eq!(format!("{a:?}"), "b\"hi\\x00\"");
    }
}
