//! Offline API-subset shim of the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! attribute, integer-range and tuple strategies, `prop::collection::vec`,
//! [`Strategy::prop_map`], `any::<T>()`, [`Just`], the unweighted
//! [`prop_oneof!`] and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **Bounded shrinking.** On failure the runner minimizes the case with
//!   an iterative halving/DFS pass over [`Strategy::shrink`] candidates
//!   (at most [`test_runner::MAX_SHRINK_ATTEMPTS`] probes), then reports
//!   the minimal failing value *and* the replay seeds. `prop_map`ped
//!   strategies yield no candidates (no inverse), so they fall back to
//!   seed-only reporting.
//! * **Deterministic by default.** Case `i` of test `t` draws from a seed
//!   mixed from (base seed, `t`, `i`). The base seed defaults to a fixed
//!   constant and can be overridden with `PROPTEST_SEED` (decimal or
//!   `0x`-hex). On failure the harness prints both the base seed and the
//!   failing case's derived seed.

use std::env;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Runner configuration. Only `cases` is honored by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, most aggressive
    /// first. The runner probes them depth-first (bounded); an empty
    /// vector means the value is already minimal for this strategy.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Strategy producing one fixed value, cloned per case — the constant
/// arms of a [`prop_oneof!`].
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternative strategies that all
/// yield one value type: the engine behind [`prop_oneof!`]. Like
/// [`Map`], the erased alternatives carry no inverse, so a `Union`
/// yields no shrink candidates (failures still replay by seed).
pub struct Union<V> {
    options: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
}

impl<V> Union<V> {
    /// Wraps the already-boxed alternatives ([`prop_oneof!`] builds
    /// the vector). Panics if `options` is empty — a choice among zero
    /// alternatives has no value to draw.
    pub fn new(options: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Union<V> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.random_range(0..self.options.len());
        (self.options[idx])(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let v = *value;
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid > lo && mid < v {
                        out.push(mid);
                    }
                    if v - 1 > lo {
                        out.push(v - 1);
                    }
                }
                out
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = *self.start();
                let v = *value;
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid > lo && mid < v {
                        out.push(mid);
                    }
                    if v - 1 > lo {
                        out.push(v - 1);
                    }
                }
                out
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, the others held fixed.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    fn any_value(rng: &mut TestRng) -> Self;

    /// Simplification candidates for [`Strategy::shrink`] on [`Any`].
    fn shrink_value(value: &Self) -> Vec<Self> {
        let _ = value;
        Vec::new()
    }
}

impl Arbitrary for bool {
    fn any_value(rng: &mut TestRng) -> bool {
        rng.random::<bool>()
    }

    fn shrink_value(value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn any_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }

            fn shrink_value(value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    let half = v / 2;
                    if half != 0 && half != v {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::any_value(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_value(value)
    }
}

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let len = value.len();
            let lo = self.size.lo;
            // Structural shrinks first: shortest legal prefix, halved
            // prefix, drop-one (front positions first).
            if len > lo {
                out.push(value[..lo].to_vec());
                let half = lo + (len - lo) / 2;
                if half > lo && half < len {
                    out.push(value[..half].to_vec());
                }
                for i in 0..len.min(4) {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
            // Then element-wise shrinks on the first few positions.
            for (i, item) in value.iter().enumerate().take(4) {
                for cand in self.element.shrink(item) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Length specification for collection strategies: an exact length or a
/// (half-open / inclusive) range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi: hi + 1 }
    }
}

/// The case loop behind [`proptest!`]. Public for the macro, not a
/// stable API.
pub mod test_runner {
    use super::*;

    const DEFAULT_BASE_SEED: u64 = 0x1905_2005_CA05_AB1E;

    fn parse_seed(s: &str) -> Option<u64> {
        let s = s.trim();
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            s.parse().ok()
        }
    }

    /// The run's base seed: `PROPTEST_SEED` if set, else a fixed
    /// constant, so runs are reproducible by default.
    pub fn base_seed() -> u64 {
        match env::var("PROPTEST_SEED") {
            Ok(v) => parse_seed(&v).unwrap_or_else(|| panic!("unparseable PROPTEST_SEED: {v:?}")),
            Err(_) => DEFAULT_BASE_SEED,
        }
    }

    /// FNV-1a, to give every test its own stream under one base seed.
    fn hash_name(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h
    }

    fn case_seed(base: u64, name_hash: u64, case: u32) -> u64 {
        // SplitMix64-style finalization over the mixed inputs.
        let mut z = base ^ name_hash.rotate_left(17) ^ ((case as u64) << 1 | 1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Hard cap on shrink probes per failing case: the minimizer is a
    /// bounded DFS, never an unbounded search.
    pub const MAX_SHRINK_ATTEMPTS: usize = 1_024;

    /// Depth-first minimization of `failing`: repeatedly descend into the
    /// first shrink candidate that still fails, until no candidate fails
    /// or the probe budget is exhausted. Returns the minimal value plus
    /// (accepted steps, probes spent).
    ///
    /// Public beyond the [`proptest!`] macro: the schedule explorer
    /// (`vlog-explore`) reuses it to shrink failing decision traces
    /// outside a property-test body.
    pub fn minimize<S: Strategy>(
        strat: &S,
        mut failing: S::Value,
        case: &mut impl FnMut(S::Value),
    ) -> (S::Value, usize, usize)
    where
        S::Value: Clone,
    {
        let mut steps = 0usize;
        let mut attempts = 0usize;
        // Shrink probes re-run the (already failing) property many times;
        // silence the default panic hook so the log stays readable. The
        // guard restores the previous hook even if a `shrink()` or
        // `clone()` panics out of the loop. (The hook is process-global:
        // a concurrently failing test on another harness thread would be
        // silenced too for the duration of this shrink pass.)
        struct HookGuard(Option<Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>>);
        impl Drop for HookGuard {
            fn drop(&mut self) {
                if let Some(h) = self.0.take() {
                    std::panic::set_hook(h);
                }
            }
        }
        let _guard = HookGuard(Some(std::panic::take_hook()));
        std::panic::set_hook(Box::new(|_| {}));
        'outer: while attempts < MAX_SHRINK_ATTEMPTS {
            let candidates = strat.shrink(&failing);
            if candidates.is_empty() {
                break;
            }
            for cand in candidates {
                if attempts >= MAX_SHRINK_ATTEMPTS {
                    break 'outer;
                }
                attempts += 1;
                let probe = cand.clone();
                if catch_unwind(AssertUnwindSafe(|| case(probe))).is_err() {
                    failing = cand;
                    steps += 1;
                    continue 'outer;
                }
            }
            break; // every candidate passes: minimal under this strategy
        }
        (failing, steps, attempts)
    }

    /// Runs `case` against `config.cases` deterministic random valuations
    /// of `strat`. On failure the case is minimized (bounded DFS over
    /// [`Strategy::shrink`]) and both the minimal value and the replay
    /// seeds are reported before the panic is re-raised.
    /// `PROPTEST_CASE_SEED` replays a single derived case seed.
    pub fn run_cases<S: Strategy>(
        config: &ProptestConfig,
        name: &str,
        strat: &S,
        mut case: impl FnMut(S::Value),
    ) where
        S::Value: Clone + std::fmt::Debug,
    {
        if let Ok(v) = env::var("PROPTEST_CASE_SEED") {
            let seed =
                parse_seed(&v).unwrap_or_else(|| panic!("unparseable PROPTEST_CASE_SEED: {v:?}"));
            let mut rng = TestRng::seed_from_u64(seed);
            let value = strat.new_value(&mut rng);
            case(value);
            return;
        }
        let base = base_seed();
        let name_hash = hash_name(name);
        for i in 0..config.cases {
            let seed = case_seed(base, name_hash, i);
            let mut rng = TestRng::seed_from_u64(seed);
            let value = strat.new_value(&mut rng);
            let first = value.clone();
            if let Err(panic) = catch_unwind(AssertUnwindSafe(|| case(first))) {
                let (minimal, steps, attempts) = minimize(strat, value, &mut case);
                eprintln!(
                    "proptest: property `{name}` failed at case {i}/{cases} \
                     (base seed {base:#018x}, case seed {seed:#018x})\n\
                     proptest: minimal failing case after {steps} shrink step(s) \
                     ({attempts} probes): {minimal:?}\n\
                     proptest: rerun just this case with PROPTEST_CASE_SEED={seed:#x}, \
                     or the whole run with PROPTEST_SEED={base:#x}",
                    cases = config.cases,
                );
                resume_unwind(panic);
            }
        }
    }

    /// Runs `case` against `config.cases` deterministic random cases.
    /// On failure, prints the reproduction seeds and re-raises the
    /// panic. `PROPTEST_CASE_SEED` replays a single derived case seed.
    /// (Raw-rng variant without shrinking; the [`proptest!`] macro uses
    /// [`run_cases`].)
    pub fn run(config: &ProptestConfig, name: &str, mut case: impl FnMut(&mut TestRng)) {
        if let Ok(v) = env::var("PROPTEST_CASE_SEED") {
            let seed =
                parse_seed(&v).unwrap_or_else(|| panic!("unparseable PROPTEST_CASE_SEED: {v:?}"));
            let mut rng = TestRng::seed_from_u64(seed);
            case(&mut rng);
            return;
        }
        let base = base_seed();
        let name_hash = hash_name(name);
        for i in 0..config.cases {
            let seed = case_seed(base, name_hash, i);
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(panic) = catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
                eprintln!(
                    "proptest: property `{name}` failed at case {i}/{cases} \
                     (base seed {base:#018x}, case seed {seed:#018x}); \
                     rerun just this case with PROPTEST_CASE_SEED={seed:#x}, \
                     or the whole run with PROPTEST_SEED={base:#x}",
                    cases = config.cases,
                );
                resume_unwind(panic);
            }
        }
    }
}

/// Defines property tests: each `fn` runs its body against many random
/// valuations of its `arg in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let __vlog_strat = ($($strat,)+);
            $crate::test_runner::run_cases(
                &config,
                stringify!($name),
                &__vlog_strat,
                |__vlog_values| {
                    let ($($arg,)+) = __vlog_values;
                    $body
                },
            );
        }
    )*};
}

/// Uniform choice among alternative strategies of one value type.
/// Unweighted subset of the real crate's macro (no `N => strat` weight
/// prefixes); expands to a [`Union`] over boxed draw closures.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut __vlog_options: ::std::vec::Vec<
            ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>,
        > = ::std::vec::Vec::new();
        $(
            let __vlog_strat = $strat;
            __vlog_options.push(::std::boxed::Box::new(
                move |rng: &mut $crate::TestRng| $crate::Strategy::new_value(&__vlog_strat, rng),
            ));
        )+
        $crate::Union::new(__vlog_options)
    }};
}

/// Like `assert!`, inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Like `assert_eq!`, inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            panic!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            panic!($($fmt)*);
        }
    }};
}

/// Like `assert_ne!`, inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            panic!("assertion failed: `(left != right)`\n  both: `{:?}`", left);
        }
    }};
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_in_bounds(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_length_honors_size_range(v in prop::collection::vec(0u8..=255, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn exact_vec_length(v in prop::collection::vec(0u32..9, 5usize)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn prop_map_applies(s in (0u64..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(s % 2, 0);
            prop_assert!(s < 200);
        }

        #[test]
        fn tuples_compose(t in (0usize..4, 10u64..20, any::<bool>())) {
            prop_assert!(t.0 < 4);
            prop_assert!((10..20).contains(&t.1));
        }

        #[test]
        fn just_repeats_its_value(v in Just(41u64).prop_map(|x| x + 1)) {
            prop_assert_eq!(v, 42);
        }

        #[test]
        fn oneof_draws_only_from_its_alternatives(
            v in prop_oneof![0u64..10, 100u64..110, Just(7_777u64)],
        ) {
            prop_assert!(
                (0..10).contains(&v) || (100..110).contains(&v) || v == 7_777,
                "out-of-alternative value {}",
                v
            );
        }
    }

    #[test]
    fn range_shrink_candidates_halve_toward_lo() {
        let s = 3u64..10;
        assert_eq!(Strategy::shrink(&s, &9), vec![3, 6, 8]);
        assert!(Strategy::shrink(&s, &3).is_empty());
        let si = 0usize..=4;
        assert_eq!(Strategy::shrink(&si, &4), vec![0, 2, 3]);
    }

    #[test]
    fn vec_shrink_respects_minimum_length() {
        let s = crate::collection::vec(0u8..=255, 2..7);
        let candidates = Strategy::shrink(&s, &vec![9u8, 9, 9, 9]);
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert!((2..7).contains(&c.len()), "illegal length {}", c.len());
        }
        // The shortest legal prefix comes first (most aggressive).
        assert_eq!(candidates[0], vec![9u8, 9]);
    }

    #[test]
    fn minimizer_finds_the_boundary_case() {
        // Property fails for v >= 37; the DFS halving pass must land on
        // exactly 37 from any failing start.
        let strat = 0u64..1_000;
        let mut case = |v: u64| assert!(v < 37, "too big");
        let (minimal, steps, attempts) = crate::test_runner::minimize(&strat, 999, &mut case);
        assert_eq!(minimal, 37);
        assert!(steps > 0);
        assert!(attempts <= crate::test_runner::MAX_SHRINK_ATTEMPTS);
    }

    #[test]
    fn minimizer_shrinks_vectors_structurally() {
        // Fails whenever the vec contains an element >= 5: minimal case
        // is the shortest legal vec [5].
        let strat = crate::collection::vec(0u64..100, 1..20);
        let mut case = |v: Vec<u64>| assert!(v.iter().all(|&x| x < 5), "bad");
        let failing = vec![93, 2, 61, 40, 7, 12];
        let (minimal, _, attempts) = crate::test_runner::minimize(&strat, failing, &mut case);
        assert_eq!(minimal, vec![5]);
        assert!(attempts <= crate::test_runner::MAX_SHRINK_ATTEMPTS);
    }

    #[test]
    fn equal_base_seeds_generate_identical_cases() {
        use crate::{test_runner, ProptestConfig, Strategy};
        let collect = || {
            let mut out = Vec::new();
            test_runner::run(&ProptestConfig::with_cases(20), "determinism", |rng| {
                out.push((0u64..1_000_000).new_value(rng));
            });
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn distinct_tests_get_distinct_streams() {
        use crate::{test_runner, ProptestConfig, Strategy};
        let collect = |name: &str| {
            let mut out = Vec::new();
            test_runner::run(&ProptestConfig::with_cases(20), name, |rng| {
                out.push((0u64..1_000_000).new_value(rng));
            });
            out
        };
        assert_ne!(collect("alpha"), collect("beta"));
    }
}
