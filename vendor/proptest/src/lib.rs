//! Offline API-subset shim of the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! attribute, integer-range and tuple strategies, `prop::collection::vec`,
//! [`Strategy::prop_map`], `any::<T>()` and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its seed instead; runs are
//!   deterministic, so the seed is a complete reproducer.
//! * **Deterministic by default.** Case `i` of test `t` draws from a seed
//!   mixed from (base seed, `t`, `i`). The base seed defaults to a fixed
//!   constant and can be overridden with `PROPTEST_SEED` (decimal or
//!   `0x`-hex). On failure the harness prints both the base seed and the
//!   failing case's derived seed.

use std::env;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Runner configuration. Only `cases` is honored by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    fn any_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn any_value(rng: &mut TestRng) -> bool {
        rng.random::<bool>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn any_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::any_value(rng)
    }
}

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Length specification for collection strategies: an exact length or a
/// (half-open / inclusive) range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi: hi + 1 }
    }
}

/// The case loop behind [`proptest!`]. Public for the macro, not a
/// stable API.
pub mod test_runner {
    use super::*;

    const DEFAULT_BASE_SEED: u64 = 0x1905_2005_CA05_AB1E;

    fn parse_seed(s: &str) -> Option<u64> {
        let s = s.trim();
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            s.parse().ok()
        }
    }

    /// The run's base seed: `PROPTEST_SEED` if set, else a fixed
    /// constant, so runs are reproducible by default.
    pub fn base_seed() -> u64 {
        match env::var("PROPTEST_SEED") {
            Ok(v) => parse_seed(&v).unwrap_or_else(|| panic!("unparseable PROPTEST_SEED: {v:?}")),
            Err(_) => DEFAULT_BASE_SEED,
        }
    }

    /// FNV-1a, to give every test its own stream under one base seed.
    fn hash_name(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h
    }

    fn case_seed(base: u64, name_hash: u64, case: u32) -> u64 {
        // SplitMix64-style finalization over the mixed inputs.
        let mut z = base ^ name_hash.rotate_left(17) ^ ((case as u64) << 1 | 1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Runs `case` against `config.cases` deterministic random cases.
    /// On failure, prints the reproduction seeds and re-raises the
    /// panic. `PROPTEST_CASE_SEED` replays a single derived case seed.
    pub fn run(config: &ProptestConfig, name: &str, mut case: impl FnMut(&mut TestRng)) {
        if let Ok(v) = env::var("PROPTEST_CASE_SEED") {
            let seed =
                parse_seed(&v).unwrap_or_else(|| panic!("unparseable PROPTEST_CASE_SEED: {v:?}"));
            let mut rng = TestRng::seed_from_u64(seed);
            case(&mut rng);
            return;
        }
        let base = base_seed();
        let name_hash = hash_name(name);
        for i in 0..config.cases {
            let seed = case_seed(base, name_hash, i);
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(panic) = catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
                eprintln!(
                    "proptest: property `{name}` failed at case {i}/{cases} \
                     (base seed {base:#018x}, case seed {seed:#018x}); \
                     rerun just this case with PROPTEST_CASE_SEED={seed:#x}, \
                     or the whole run with PROPTEST_SEED={base:#x}",
                    cases = config.cases,
                );
                resume_unwind(panic);
            }
        }
    }
}

/// Defines property tests: each `fn` runs its body against many random
/// valuations of its `arg in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::test_runner::run(&config, stringify!($name), |__vlog_rng| {
                $(let $arg = $crate::Strategy::new_value(&($strat), __vlog_rng);)+
                $body
            });
        }
    )*};
}

/// Like `assert!`, inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Like `assert_eq!`, inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            panic!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            panic!($($fmt)*);
        }
    }};
}

/// Like `assert_ne!`, inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            panic!("assertion failed: `(left != right)`\n  both: `{:?}`", left);
        }
    }};
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_in_bounds(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_length_honors_size_range(v in prop::collection::vec(0u8..=255, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn exact_vec_length(v in prop::collection::vec(0u32..9, 5usize)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn prop_map_applies(s in (0u64..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(s % 2, 0);
            prop_assert!(s < 200);
        }

        #[test]
        fn tuples_compose(t in (0usize..4, 10u64..20, any::<bool>())) {
            prop_assert!(t.0 < 4);
            prop_assert!((10..20).contains(&t.1));
        }
    }

    #[test]
    fn equal_base_seeds_generate_identical_cases() {
        use crate::{test_runner, ProptestConfig, Strategy};
        let collect = || {
            let mut out = Vec::new();
            test_runner::run(&ProptestConfig::with_cases(20), "determinism", |rng| {
                out.push((0u64..1_000_000).new_value(rng));
            });
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn distinct_tests_get_distinct_streams() {
        use crate::{test_runner, ProptestConfig, Strategy};
        let collect = |name: &str| {
            let mut out = Vec::new();
            test_runner::run(&ProptestConfig::with_cases(20), name, |rng| {
                out.push((0u64..1_000_000).new_value(rng));
            });
            out
        };
        assert_ne!(collect("alpha"), collect("beta"));
    }
}
