//! Offline API-subset shim of the `criterion` crate.
//!
//! Compiles the workspace's Criterion benches unchanged and runs them as
//! a simple calibrated timing loop: per benchmark it warms up, picks an
//! iteration count that fills the measurement window, and reports the
//! mean ns/iteration. No statistics machinery, no HTML reports, no CLI —
//! a deterministic, dependency-free stand-in good enough for trend
//! tracking.
//!
//! Environment knobs: `VLOG_BENCH_MS` (measurement window per benchmark,
//! default 100 ms; lower it for smoke runs).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark: a function name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// How [`Bencher::iter_batched`] amortizes setup. The shim runs one
/// setup per timed iteration regardless, so this only affects labels.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    window: Duration,
    /// (iterations, total measured time) of the last measurement.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    fn new(window: Duration) -> Bencher {
        Bencher {
            window,
            result: None,
        }
    }

    /// Times `routine` over enough iterations to fill the window.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: double the batch until it is measurable.
        let mut batch = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(1) || batch >= 1 << 20 {
                break took / batch.max(1) as u32;
            }
            batch *= 2;
        };
        let iters = if per_iter.is_zero() {
            batch
        } else {
            (self.window.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 50_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((iters, start.elapsed()));
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Calibrate on a few iterations.
        let mut probe = Duration::ZERO;
        let mut probed = 0u64;
        while probe < Duration::from_millis(1) && probed < 1_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            probe += start.elapsed();
            probed += 1;
        }
        let per_iter = probe / probed.max(1) as u32;
        let iters = if per_iter.is_zero() {
            probed
        } else {
            (self.window.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.result = Some((iters, total));
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        size: BatchSize,
    ) {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size);
    }
}

fn window_from_env() -> Duration {
    let ms = std::env::var("VLOG_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100u64);
    Duration::from_millis(ms)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(full_id: &str, window: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(window);
    f(&mut b);
    match b.result {
        Some((iters, total)) => {
            let ns = total.as_nanos() as f64 / iters.max(1) as f64;
            println!("{full_id:<50} time: [{}] ({iters} iterations)", fmt_ns(ns));
        }
        None => println!("{full_id:<50} (no measurement)"),
    }
}

/// The benchmark manager created by [`criterion_main!`].
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            window: window_from_env(),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim has no CLI.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn measurement_time(mut self, window: Duration) -> Criterion {
        self.window = window;
        self
    }

    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let window = self.window;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            window,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_one(&id.into().render(), self.window, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Criterion {
        run_one(&id.render(), self.window, &mut |b| f(b, input));
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    window: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.window = window;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().render());
        run_one(&full, self.window, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.render());
        run_one(&full, self.window, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iter() {
        let mut b = Bencher::new(Duration::from_millis(2));
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        let (iters, _) = b.result.expect("no measurement recorded");
        assert!(iters >= 1);
        assert!(count >= iters);
    }

    #[test]
    fn bencher_measures_iter_batched() {
        let mut b = Bencher::new(Duration::from_millis(2));
        b.iter_batched(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.result.is_some());
    }

    #[test]
    fn benchmark_id_renders_group_paths() {
        assert_eq!(BenchmarkId::new("encode", 16).render(), "encode/16");
        assert_eq!(BenchmarkId::from_parameter(8).render(), "8");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
