//! Offline API-subset shim of the `criterion` crate.
//!
//! Compiles the workspace's Criterion benches unchanged and runs them as
//! a calibrated sampling loop: per benchmark it warms up, picks a batch
//! size, takes a set of timed samples, rejects outliers around the
//! sample median (modified z-score on the MAD) and reports the mean with
//! a 95% confidence interval. No HTML reports, no CLI — a deterministic,
//! dependency-free stand-in good enough for trend tracking.
//!
//! Every run also appends its measurements to a process-global registry;
//! [`criterion_main!`] flushes the registry to `BENCH_<target>.json` in
//! the repository root (name, n, mean, median, std-dev, min/max and the
//! CI per benchmark), so perf trajectories are trackable across PRs.
//!
//! Environment knobs: `VLOG_BENCH_MS` (measurement window per benchmark,
//! default 100 ms; lower it for smoke runs), `VLOG_BENCH_OUT` (directory
//! for the JSON report; defaults to the nearest ancestor of the working
//! directory containing a `Cargo.lock`).

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target number of timed samples per benchmark.
const TARGET_SAMPLES: usize = 25;
/// Modified z-score cutoff for MAD-based outlier rejection.
const OUTLIER_Z: f64 = 3.5;
/// Two-sided 95% normal quantile.
const Z_95: f64 = 1.96;

/// Identifies one benchmark: a function name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// How [`Bencher::iter_batched`] amortizes setup. The shim runs one
/// setup per timed iteration regardless, so this only affects labels.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Summary statistics of one benchmark after outlier rejection. All
/// times in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Benchmark id (group/name/parameter).
    pub name: String,
    /// Samples kept after outlier rejection.
    pub n: usize,
    /// Samples rejected as outliers.
    pub rejected: usize,
    pub mean_ns: f64,
    pub median_ns: f64,
    pub stddev_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    /// 95% confidence interval on the mean: `mean ± ci95_ns`.
    pub ci95_ns: f64,
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median-based outlier rejection + normal-theory interval over raw
/// per-iteration samples.
fn summarize(name: &str, samples: &[f64]) -> Summary {
    assert!(!samples.is_empty(), "no samples for {name}");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = median_of(&sorted);
    // Modified z-score on the median absolute deviation: robust to the
    // long right tail that scheduler noise produces.
    let mut devs: Vec<f64> = sorted.iter().map(|x| (x - median).abs()).collect();
    devs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mad = median_of(&devs);
    let kept: Vec<f64> = if mad > 0.0 {
        let scale = 1.4826 * mad;
        sorted
            .iter()
            .copied()
            .filter(|x| ((x - median) / scale).abs() <= OUTLIER_Z)
            .collect()
    } else {
        sorted.clone()
    };
    let kept = if kept.is_empty() {
        sorted.clone()
    } else {
        kept
    };
    let n = kept.len();
    let mean = kept.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        kept.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let stddev = var.sqrt();
    let ci95 = if n > 1 {
        Z_95 * stddev / (n as f64).sqrt()
    } else {
        0.0
    };
    Summary {
        name: name.to_string(),
        n,
        rejected: samples.len() - n,
        mean_ns: mean,
        median_ns: median_of(&kept),
        stddev_ns: stddev,
        min_ns: kept.first().copied().unwrap_or(0.0),
        max_ns: kept.last().copied().unwrap_or(0.0),
        ci95_ns: ci95,
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    window: Duration,
    /// ns/iteration of each timed sample of the last measurement.
    samples: Option<Vec<f64>>,
}

impl Bencher {
    fn new(window: Duration) -> Bencher {
        Bencher {
            window,
            samples: None,
        }
    }

    /// Times `routine` over a set of batched samples filling the window.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: double the batch until it is measurable.
        let mut batch = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(1) || batch >= 1 << 20 {
                break took / batch.max(1) as u32;
            }
            batch *= 2;
        };
        // Aim for TARGET_SAMPLES samples over the window, each of
        // `sample_iters` iterations.
        let total_iters = if per_iter.is_zero() {
            batch.max(TARGET_SAMPLES as u64)
        } else {
            (self.window.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 50_000_000) as u64
        };
        let sample_iters = (total_iters / TARGET_SAMPLES as u64).max(1);
        let n_samples = (total_iters / sample_iters).clamp(1, TARGET_SAMPLES as u64) as usize;
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let start = Instant::now();
            for _ in 0..sample_iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / sample_iters as f64);
        }
        self.samples = Some(samples);
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement. Each timed invocation is one
    /// sample.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Calibrate on a few iterations.
        let mut probe = Duration::ZERO;
        let mut probed = 0u64;
        while probe < Duration::from_millis(1) && probed < 1_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            probe += start.elapsed();
            probed += 1;
        }
        let per_iter = probe / probed.max(1) as u32;
        let iters = if per_iter.is_zero() {
            probed
        } else {
            (self.window.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let mut samples = Vec::with_capacity(iters.min(4096) as usize);
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
        }
        self.samples = Some(samples);
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        size: BatchSize,
    ) {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size);
    }
}

fn window_from_env() -> Duration {
    let ms = std::env::var("VLOG_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100u64);
    Duration::from_millis(ms)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Process-global registry of finished measurements, flushed to JSON by
/// [`criterion_main!`] through [`write_report`].
static RESULTS: Mutex<Vec<Summary>> = Mutex::new(Vec::new());

fn run_one(full_id: &str, window: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(window);
    f(&mut b);
    match b.samples {
        Some(samples) => {
            let s = summarize(full_id, &samples);
            println!(
                "{full_id:<50} time: [{} {} {}] ({} samples, {} outliers)",
                fmt_ns(s.mean_ns - s.ci95_ns),
                fmt_ns(s.mean_ns),
                fmt_ns(s.mean_ns + s.ci95_ns),
                s.n,
                s.rejected,
            );
            RESULTS.lock().unwrap().push(s);
        }
        None => println!("{full_id:<50} (no measurement)"),
    }
}

/// Bench-target name: executable file stem with cargo's trailing
/// `-<16 hex>` disambiguation hash stripped.
fn target_name() -> String {
    let exe = std::env::current_exe().unwrap_or_default();
    let stem = exe
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// Directory for `BENCH_*.json`: `VLOG_BENCH_OUT` if set, else the
/// nearest ancestor of the working directory containing a `Cargo.lock`
/// (the workspace root — cargo runs benches from the crate directory),
/// else the working directory itself.
///
/// Shim extra (not part of the real criterion API): public so
/// non-Criterion bench binaries that write their own `BENCH_*.json`
/// (the `workloads` sweep) resolve the output directory identically.
pub fn out_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("VLOG_BENCH_OUT") {
        return std::path::PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    let mut probe = cwd.clone();
    loop {
        if probe.join("Cargo.lock").exists() {
            return probe;
        }
        if !probe.pop() {
            return cwd;
        }
    }
}

/// Shim extra (see [`out_dir`]): shared JSON string escaping for
/// `BENCH_*.json` writers.
pub fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Writes every registered measurement to `BENCH_<target>.json` and
/// clears the registry. Called by [`criterion_main!`]; harmless no-op
/// when nothing was measured.
pub fn write_report() {
    let results = std::mem::take(&mut *RESULTS.lock().unwrap());
    if results.is_empty() {
        return;
    }
    let target = target_name();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"target\": \"{}\",\n", json_escape(&target)));
    json.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"rejected\": {}, \"mean_ns\": {:.2}, \
             \"median_ns\": {:.2}, \"stddev_ns\": {:.2}, \"min_ns\": {:.2}, \"max_ns\": {:.2}, \
             \"ci95_ns\": {:.2}}}{}\n",
            json_escape(&s.name),
            s.n,
            s.rejected,
            s.mean_ns,
            s.median_ns,
            s.stddev_ns,
            s.min_ns,
            s.max_ns,
            s.ci95_ns,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = out_dir().join(format!("BENCH_{target}.json"));
    match std::fs::write(&path, json) {
        Ok(()) => println!("bench report: {}", path.display()),
        Err(e) => eprintln!("bench report: failed to write {}: {e}", path.display()),
    }
}

/// The benchmark manager created by [`criterion_main!`].
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            window: window_from_env(),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim has no CLI.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn measurement_time(mut self, window: Duration) -> Criterion {
        self.window = window;
        self
    }

    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let window = self.window;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            window,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_one(&id.into().render(), self.window, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Criterion {
        run_one(&id.render(), self.window, &mut |b| f(b, input));
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    window: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.window = window;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().render());
        run_one(&full, self.window, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.render());
        run_one(&full, self.window, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups, then flushes the
/// measurements to `BENCH_<target>.json`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iter() {
        let mut b = Bencher::new(Duration::from_millis(2));
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        let samples = b.samples.expect("no measurement recorded");
        assert!(!samples.is_empty());
        assert!(count >= samples.len() as u64);
    }

    #[test]
    fn bencher_measures_iter_batched() {
        let mut b = Bencher::new(Duration::from_millis(2));
        b.iter_batched(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.samples.is_some());
    }

    #[test]
    fn benchmark_id_renders_group_paths() {
        assert_eq!(BenchmarkId::new("encode", 16).render(), "encode/16");
        assert_eq!(BenchmarkId::from_parameter(8).render(), "8");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn summary_rejects_median_outliers() {
        // 20 well-behaved samples around 100 ns plus one wild outlier.
        let mut samples: Vec<f64> = (0..20).map(|i| 100.0 + (i % 5) as f64).collect();
        samples.push(100_000.0);
        let s = summarize("t", &samples);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.n, 20);
        assert!(s.mean_ns < 110.0, "outlier leaked into mean: {}", s.mean_ns);
        assert!(s.max_ns < 110.0);
        assert!(s.ci95_ns > 0.0);
        assert!(s.stddev_ns > 0.0);
    }

    #[test]
    fn summary_handles_constant_samples() {
        let s = summarize("t", &[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.mean_ns, 5.0);
        assert_eq!(s.median_ns, 5.0);
        assert_eq!(s.stddev_ns, 0.0);
        assert_eq!(s.ci95_ns, 0.0);
    }

    #[test]
    fn summary_median_is_robust() {
        let s = summarize("t", &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median_ns, 2.5);
        let s = summarize("t", &[1.0, 2.0, 3.0]);
        assert_eq!(s.median_ns, 2.0);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\tnl\n"), "tab\\u0009nl\\u000a");
    }

    #[test]
    fn target_name_strips_cargo_hash() {
        // Indirect check through the helper's rules on a synthetic stem.
        let stem = "micro-0123456789abcdef";
        let (base, hash) = stem.rsplit_once('-').unwrap();
        assert_eq!(base, "micro");
        assert!(hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()));
    }
}
